package mcode

// Native fuzz target for the text-section decoder — the parser that
// consumes binary-ifunc code bytes off the wire. DecodeText guards the
// verifier itself: a stream that panics the decoder never reaches
// Verify, so this is the outermost trust boundary for shipped machine
// code. Properties checked on every input:
//
//  1. DecodeText never panics and never allocates proportionally to a
//     declared count the remaining bytes cannot hold.
//  2. Idempotent canonicalization: any stream that decodes re-encodes
//     to a canonical form that decodes to the identical instruction
//     slice and re-encodes to identical bytes. (The variable-width
//     x86-style encoding admits non-canonical inputs — present-but-zero
//     mask fields — so byte equality is asserted only after one
//     canonicalization round, not against the raw input.)
//
// Run the smoke in CI with: go test -fuzz=FuzzDecodeText -fuzztime=10s ./internal/mcode

import (
	"bytes"
	"testing"

	"threechains/internal/ir"
	"threechains/internal/isa"
)

// fuzzArchs maps the fuzzer's free byte onto the three wire encodings.
var fuzzArchs = []isa.Arch{isa.ArchAArch64, isa.ArchX86_64, isa.ArchRISCV64}

// seedProgram exercises every field the codecs serialize: registers,
// both immediates, branch targets and the vector/call misc block.
func seedProgram() *Program {
	return &Program{
		Name: "fuzz/seed", Params: 2, NumRegs: 8,
		Code: []MInstr{
			{Op: MConst, Ty: ir.I64, Dst: 2, Imm: -7},
			{Op: MAdd, Ty: ir.I64, Dst: 3, A: 0, B: 2},
			{Op: MICmp, Ty: ir.I64, Pred: ir.PredSLT, Dst: 4, A: 3, B: 1},
			{Op: MLoad, Ty: ir.I64, Dst: 5, A: 3, Imm: 16},
			{Op: MStore, Ty: ir.I64, A: 5, B: 3, Imm: 24, Imm2: 1},
			{Op: MJnz, A: 4, Target: 1},
			{Op: MRet, A: 5},
		},
	}
}

func FuzzDecodeText(f *testing.F) {
	for i, arch := range fuzzArchs {
		enc, err := EncodeText(seedProgram(), arch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc, byte(i))
		// Truncated and bit-flipped variants steer the fuzzer toward the
		// record-boundary checks.
		f.Add(enc[:len(enc)/2], byte(i))
		flip := append([]byte(nil), enc...)
		flip[len(flip)/3] ^= 0x40
		f.Add(flip, byte(i))
	}
	f.Add([]byte{byte(isa.ArchAArch64), 0xFF, 0xFF, 0xFF, 0x7F}, byte(0)) // huge declared count
	f.Add([]byte{}, byte(1))

	f.Fuzz(func(t *testing.T, data []byte, archSel byte) {
		arch := fuzzArchs[int(archSel)%len(fuzzArchs)]
		code, err := DecodeText(data, arch)
		if err != nil {
			return
		}
		canon, err := EncodeText(&Program{Code: code}, arch)
		if err != nil {
			t.Fatalf("decoded stream failed to re-encode: %v", err)
		}
		code2, err := DecodeText(canon, arch)
		if err != nil {
			t.Fatalf("canonical form failed to decode: %v", err)
		}
		if len(code2) != len(code) {
			t.Fatalf("canonicalization changed length: %d -> %d", len(code), len(code2))
		}
		for i := range code {
			if code[i] != code2[i] {
				t.Fatalf("instr %d changed across canonicalization:\n%+v\n%+v", i, code[i], code2[i])
			}
		}
		canon2, err := EncodeText(&Program{Code: code2}, arch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form not a fixed point:\n%x\n%x", canon, canon2)
		}
	})
}
