package bench

// The shard-count differential suite: the sharded conservative engine
// must be observationally invisible. Every scenario here runs at
// shards ∈ {1, 2, 4, NumCPU} and the full outcome — result hash over
// per-op kernel values, final region bytes and planner stats, plus the
// final virtual time and the dispatched-event count — must be
// bit-identical to the single-heap run. These tests are covered by the
// CI fail-on-skip guard: a skip silently voids the oracle guarantee.

import (
	"runtime"
	"testing"

	"threechains/internal/place"
	"threechains/internal/testbed"
)

// scaleDiffScenario is the differential suite's compact grouped
// scenario: small enough to run at four shard counts in well under a
// second, with cross-group ring traffic so every shard count > 1 sees
// genuine cross-shard fabric sends.
func scaleDiffScenario() ScaleScenario {
	return ScaleScenario{
		Name: "diff",
		Params: place.ScaleParams{
			Seed: 3, Groups: 8, GroupNodes: 4, OpsPerGroup: 16,
			Template: place.WorkloadParams{
				Types: 4, MaxPayload: 64,
				MinRegionWords: 8, MaxRegionWords: 64,
				HeavyIters: 256, HeavyFrac: 0.25, PredeployFrac: 0.5,
				SpeedMin: 1, SpeedMax: 4, StreamDepth: 4,
			},
		},
		CrossTraffic: true,
	}
}

// diffShardCounts is the suite's grid (deduplicated: NumCPU may be 1,
// 2 or 4 already).
func diffShardCounts() []int {
	return ScaleShardCounts()
}

// TestScaleShardDifferential pins the tentpole invariant: grouped scale
// scenarios produce bit-identical outcomes at every shard count, on
// every paper profile (the profiles differ in lookahead — Thor-Xeon's
// 1.4 µs floor vs Ookami's 1.8 µs — so the window cadence differs while
// the outcome must not).
func TestScaleShardDifferential(t *testing.T) {
	sc := scaleDiffScenario()
	for _, p := range testbed.All() {
		base, err := RunScaleScenario(p, sc, 1)
		if err != nil {
			t.Fatalf("%s shards=1: %v", p.Name, err)
		}
		for _, k := range diffShardCounts()[1:] {
			o, err := RunScaleScenario(p, sc, k)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", p.Name, k, err)
			}
			if o.Hash != base.Hash {
				t.Errorf("%s shards=%d: result hash %016x, single-heap %016x", p.Name, k, o.Hash, base.Hash)
			}
			if o.Virtual != base.Virtual {
				t.Errorf("%s shards=%d: final virtual time %v, single-heap %v", p.Name, k, o.Virtual, base.Virtual)
			}
			if o.Events != base.Events {
				t.Errorf("%s shards=%d: %d events, single-heap %d", p.Name, k, o.Events, base.Events)
			}
			for g := range base.GroupStats {
				if o.GroupStats[g] != base.GroupStats[g] {
					t.Errorf("%s shards=%d: group %d stats %+v, single-heap %+v",
						p.Name, k, g, o.GroupStats[g], base.GroupStats[g])
				}
			}
		}
	}
}

// TestScaleGolden pins the scale-256 scenario end to end: the grouped
// generator's fingerprint (drift in any rand draw re-prices every scale
// benchmark) and the full result hash of the materialized run.
func TestScaleGolden(t *testing.T) {
	scs := ScaleScenarios()
	if got, want := scs[0].Name, "scale-256"; got != want {
		t.Fatalf("scenario order changed: got %q, want %q", got, want)
	}
	sw := place.GenerateScale(scs[0].Params)
	if got, want := sw.Fingerprint(), uint64(0xceb3369fe0462901); got != want {
		t.Errorf("scale-256 fingerprint %016x, want %016x (generator drift)", got, want)
	}
	if got, want := place.GenerateScale(ScaleScenarios()[1].Params).Fingerprint(), uint64(0x0ff32c5f0465fc7d); got != want {
		t.Errorf("scale-1000 fingerprint %016x, want %016x (generator drift)", got, want)
	}
	o, err := RunScaleScenario(testbed.ThorXeon(), scs[0], runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	// Re-pinned for static planner seeding (verifier PR): types whose
	// step count the verifier proved statically bounded are priced from
	// the first message instead of detouring through explore-via-pull,
	// which legitimately moves the route mix (and with it the planner
	// stats and final virtual time the hash folds in). The new mix is
	// bit-identical across shard counts 1/2/4 and across runs.
	if got, want := o.Hash, uint64(0x6270a8953e413b8a); got != want {
		t.Errorf("scale-256 result hash %016x, want %016x", got, want)
	}
}

// TestScaleSweepReport checks the sweep report plumbing: per-shard rows
// with GOMAXPROCS, wall/virtual ratio and speedup populated, identical
// hashes across rows (the sweep itself fails on divergence).
func TestScaleSweepReport(t *testing.T) {
	res, err := ScaleSweep(testbed.ThorXeon(), []ScaleScenario{scaleDiffScenario()}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Runs) != 2 {
		t.Fatalf("want 1 scenario x 2 runs, got %+v", res)
	}
	r := res[0]
	if r.Nodes != 32 || r.Ops != 128 {
		t.Errorf("scenario shape: nodes=%d ops=%d, want 32/128", r.Nodes, r.Ops)
	}
	if r.LookaheadNS <= 0 {
		t.Errorf("lookahead not recorded: %v", r.LookaheadNS)
	}
	for _, run := range r.Runs {
		if run.Gomaxprocs != runtime.GOMAXPROCS(0) {
			t.Errorf("gomaxprocs %d, want %d", run.Gomaxprocs, runtime.GOMAXPROCS(0))
		}
		if run.ResultHash != r.Runs[0].ResultHash {
			t.Errorf("hash diverged across rows: %s vs %s", run.ResultHash, r.Runs[0].ResultHash)
		}
		if run.VirtualUS <= 0 || run.WallMS <= 0 || run.WallPerVirtual <= 0 || run.Speedup <= 0 {
			t.Errorf("unpopulated run row: %+v", run)
		}
	}
}

// BenchmarkScale256 is the CI scale smoke: the 256-node grouped
// scenario on the sharded engine at NumCPU shards (one iteration in the
// bench job; locally it doubles as a wall-clock probe).
func BenchmarkScale256(b *testing.B) {
	sc := ScaleScenarios()[0]
	p := testbed.ThorXeon()
	for i := 0; i < b.N; i++ {
		if _, err := RunScaleScenario(p, sc, runtime.NumCPU()); err != nil {
			b.Fatal(err)
		}
	}
}
