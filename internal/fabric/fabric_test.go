package fabric

import (
	"testing"

	"threechains/internal/isa"
	"threechains/internal/sim"
)

func params() NetParams {
	return NetParams{
		BaseLatency:  sim.Time(1300) * sim.Nanosecond,
		LatPerByte:   sim.FromNanos(0.4),
		GapPerByte:   sim.FromNanos(0.08),
		SendOverhead: 100 * sim.Nanosecond,
		RecvOverhead: 80 * sim.Nanosecond,
		NICOverhead:  30 * sim.Nanosecond,
	}
}

func pair(t *testing.T) (*sim.Engine, *Network, *Node, *Node) {
	t.Helper()
	eng := sim.New()
	nw := New(eng, params())
	a := nw.AddNode("a", isa.XeonE5(), 1<<20)
	b := nw.AddNode("b", isa.XeonE5(), 1<<20)
	return eng, nw, a, b
}

func TestOneWayLatency(t *testing.T) {
	eng, _, a, b := pair(t)
	p := params()
	size := 1000
	var arrived sim.Time
	a.Send(b, make([]byte, size), nil, func(*Message) { arrived = eng.Now() })
	eng.Run()
	want := p.SendOverhead + p.BaseLatency + sim.Time(size)*p.LatPerByte
	if arrived != want {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
}

func TestSenderNICSerializes(t *testing.T) {
	eng, _, a, b := pair(t)
	p := params()
	const size = 5000
	var arrivals []sim.Time
	for i := 0; i < 3; i++ {
		a.Send(b, make([]byte, size), nil, func(*Message) { arrivals = append(arrivals, eng.Now()) })
	}
	eng.Run()
	// Successive sends are spaced by the NIC gap, not delivered together.
	gap := p.SendOverhead + sim.Time(size)*p.GapPerByte
	if arrivals[1]-arrivals[0] != gap || arrivals[2]-arrivals[1] != gap {
		t.Fatalf("arrivals %v, want spacing %v", arrivals, gap)
	}
}

func TestInOrderDelivery(t *testing.T) {
	eng, _, a, b := pair(t)
	var order []int
	// A big message followed by a tiny one: the tiny one must not overtake.
	a.Send(b, make([]byte, 100000), nil, func(*Message) { order = append(order, 1) })
	a.Send(b, make([]byte, 1), nil, func(*Message) { order = append(order, 2) })
	eng.Run()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestLocalCompletionBeforeDelivery(t *testing.T) {
	eng, _, a, b := pair(t)
	var local, remote sim.Time
	sig := a.Send(b, make([]byte, 100), nil, func(*Message) { remote = eng.Now() })
	sig.OnFire(func() { local = eng.Now() })
	eng.Run()
	if !(local > 0 && remote > 0 && local < remote) {
		t.Fatalf("local %v, remote %v", local, remote)
	}
}

func TestExecCPUSerializes(t *testing.T) {
	eng, _, a, _ := pair(t)
	var done []sim.Time
	a.ExecCPU(10*sim.Microsecond, func() { done = append(done, eng.Now()) })
	a.ExecCPU(5*sim.Microsecond, func() { done = append(done, eng.Now()) })
	eng.Run()
	if done[0] != 10*sim.Microsecond || done[1] != 15*sim.Microsecond {
		t.Fatalf("done = %v", done)
	}
	if a.Stats.CPUBusy != 15*sim.Microsecond {
		t.Fatalf("cpu busy = %v", a.Stats.CPUBusy)
	}
}

func TestAllocBumpAndAlignment(t *testing.T) {
	_, _, a, _ := pair(t)
	p1 := a.Alloc(3)
	p2 := a.Alloc(8)
	if p1%8 != 0 || p2%8 != 0 {
		t.Fatalf("unaligned allocations %d %d", p1, p2)
	}
	if p2 != p1+8 {
		t.Fatalf("bump allocator skipped: %d -> %d", p1, p2)
	}
	if a.HeapUsed() != 16 {
		t.Fatalf("heap used = %d", a.HeapUsed())
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	eng := sim.New()
	nw := New(eng, params())
	n := nw.AddNode("tiny", isa.XeonE5(), 4096)
	defer func() {
		if recover() == nil {
			t.Error("heap exhaustion did not panic")
		}
	}()
	n.Alloc(1 << 20)
}

func TestStackRegionReserved(t *testing.T) {
	eng := sim.New()
	nw := New(eng, params())
	n := nw.AddNode("n", isa.A64FX(), 1<<20)
	base, size := n.StackRegion()
	if size == 0 || base+size != uint64(len(n.Mem())) {
		t.Fatalf("stack region [%d,%d) in %d", base, base+size, len(n.Mem()))
	}
}

func TestRemoteMemoryBounds(t *testing.T) {
	_, _, a, _ := pair(t)
	if err := a.WriteMem(uint64(len(a.Mem()))-4, make([]byte, 8)); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if _, err := a.ReadMem(1<<40, 8); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if err := a.WriteMem(16, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadMem(16, 3)
	if err != nil || got[1] != 2 {
		t.Fatalf("read back %v, %v", got, err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng, _, a, b := pair(t)
	a.Send(b, make([]byte, 100), nil, func(*Message) {})
	a.Send(b, make([]byte, 50), nil, func(*Message) {})
	eng.Run()
	if a.Stats.MsgsSent != 2 || a.Stats.BytesSent != 150 {
		t.Fatalf("sender stats %+v", a.Stats)
	}
	if b.Stats.MsgsReceived != 2 || b.Stats.BytesReceived != 150 {
		t.Fatalf("receiver stats %+v", b.Stats)
	}
}

func TestWireTime(t *testing.T) {
	p := params()
	if p.WireTime(0) != p.BaseLatency {
		t.Fatal("zero-byte wire time")
	}
	if p.WireTime(1000) != p.BaseLatency+1000*p.LatPerByte {
		t.Fatal("per-byte wire time")
	}
}
