package ifunc

import (
	"fmt"
	"math"

	"threechains/internal/jit"
	"threechains/internal/mcode"
)

// Registration is a receiver-side registered ifunc type: everything the
// polling function needs to execute truncated frames of this type and to
// re-forward the full code to third parties.
type Registration struct {
	// Name is the registered name when known locally; remotely learned
	// registrations synthesize one from the hash.
	Name string
	Hash uint64
	Kind CodeKind
	// Compiled is the ready-to-run artifact (JIT output or loaded
	// binary).
	Compiled *jit.Compiled
	// CodeBytes is the original code section (fat-bitcode archive or
	// per-ISA object) kept verbatim so this node can propagate the ifunc
	// onward — the recursive-injection capability. It is the canonical
	// buffer of the node's content-addressed store, pinned for the
	// registration's lifetime.
	CodeBytes []byte
	// CodeHash is ContentHash(CodeBytes) — the cluster-wide content key,
	// memoized at registration so the send path never re-hashes.
	CodeHash uint64
	// EntryNames maps frame entry indices to function names.
	EntryNames []string
	// Executions counts invocations on this node.
	Executions uint64
	// TotalSteps accumulates the dynamic machine instructions those
	// invocations executed (lifetime total, kept for reports).
	TotalSteps uint64
	// stepEWMA is the decayed mean dynamic step count of one message of
	// this type — the cost signal shared by the runtime's cost-aware
	// drain ordering and the placement planner's cost model. Unlike the
	// lifetime mean TotalSteps/Executions, it tracks phase changes in a
	// type's behavior (a kernel whose per-message work grows or shrinks
	// over time re-converges within ~2/stepAlpha messages).
	stepEWMA float64
	// putEWMA is the decayed mean write-back PUT payload (bytes beyond
	// the PUT header) of one pull-route execution of this type — what the
	// delta write-back actually transmitted, segment descriptors
	// included. The planner prices the PullCost write-back term with it,
	// so a kernel that dirties 8 bytes of a 32 KiB region stops being
	// charged for 32 KiB.
	putEWMA float64
	putObs  uint64
	// getEWMA mirrors putEWMA for the pull direction: the decayed mean
	// GET payload (response bytes beyond the header, segment descriptors
	// included) one pull-route execution of this type actually fetched
	// once the region cache negotiated away current chunks. Version hits
	// (full elisions) are not folded in — they are priced separately as
	// zero — so the estimate stays the expected residual of a *stale*
	// re-pull.
	getEWMA float64
	getObs  uint64
	// Machine is the reusable execution context the runtime binds to this
	// registration on first execution. Reusing it (with its pooled
	// register files) keeps the per-message hot path allocation-free;
	// it dies with the registration, matching the paper's compiled-code
	// lifetime ("stays alive until the ifunc is de-registered").
	Machine *mcode.Machine
}

// stepAlpha is the per-message weight of the decayed step estimate: an
// effective window of ~2/alpha ≈ 32 messages, small enough to adapt to
// phase changes within one busy drain sequence, large enough that one
// outlier message cannot reorder a drain.
const stepAlpha = 1.0 / 16

// ObserveExec folds a batch of n executions totaling steps dynamic
// machine instructions into the registration's cost statistics. The
// decayed estimate weights the batch mean by 1-(1-alpha)^n, which is
// exactly n sequential per-message updates with the same mean —
// batch-size invariant, so MaxDrain never perturbs the estimate's
// trajectory for a steady workload.
func (r *Registration) ObserveExec(n, steps uint64) {
	if n == 0 {
		return
	}
	mean := float64(steps) / float64(n)
	if r.Executions == 0 {
		r.stepEWMA = mean
	} else {
		w := math.Pow(1-stepAlpha, float64(n))
		r.stepEWMA += (1 - w) * (mean - r.stepEWMA)
	}
	r.Executions += n
	r.TotalSteps += steps
}

// MeanSteps returns the decayed mean dynamic step count of one message
// of this type; ok is false when the type has never executed here (no
// measurement to decay).
func (r *Registration) MeanSteps() (mean float64, ok bool) {
	if r.Executions == 0 {
		return 0, false
	}
	return r.stepEWMA, true
}

// ObservePutBytes folds one pull-route write-back's transmitted PUT
// payload (0 when the kernel dirtied nothing) into the decayed
// estimate, with the same window as the step estimate.
func (r *Registration) ObservePutBytes(b float64) {
	if r.putObs == 0 {
		r.putEWMA = b
	} else {
		r.putEWMA += stepAlpha * (b - r.putEWMA)
	}
	r.putObs++
}

// MeanPutBytes returns the decayed mean write-back PUT payload of one
// pull-route execution; ok is false before the first observation.
func (r *Registration) MeanPutBytes() (mean float64, ok bool) {
	if r.putObs == 0 {
		return 0, false
	}
	return r.putEWMA, true
}

// ObserveGetBytes folds one stale pull's transmitted GET payload (the
// chunk-delta bytes, or the whole region on the vectored-framing
// fallback and on cold pulls) into the decayed estimate.
func (r *Registration) ObserveGetBytes(b float64) {
	if r.getObs == 0 {
		r.getEWMA = b
	} else {
		r.getEWMA += stepAlpha * (b - r.getEWMA)
	}
	r.getObs++
}

// MeanGetBytes returns the decayed mean GET payload of one stale
// pull-route execution; ok is false before the first observation.
func (r *Registration) MeanGetBytes() (mean float64, ok bool) {
	if r.getObs == 0 {
		return 0, false
	}
	return r.getEWMA, true
}

// EntryName resolves a frame entry index.
func (r *Registration) EntryName(idx uint16) (string, error) {
	if int(idx) >= len(r.EntryNames) {
		return "", fmt.Errorf("ifunc: entry %d out of range (%d entries) in %s",
			idx, len(r.EntryNames), r.Name)
	}
	return r.EntryNames[idx], nil
}

// Registry is the per-node table of registered ifunc types, keyed by the
// 64-bit type hash carried in every frame header.
type Registry struct {
	byHash map[uint64]*Registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byHash: make(map[uint64]*Registration)}
}

// Get looks up a registration.
func (rg *Registry) Get(hash uint64) (*Registration, bool) {
	r, ok := rg.byHash[hash]
	return r, ok
}

// Put stores a registration (replacing any previous one of the same
// hash, like re-registering an ifunc library).
func (rg *Registry) Put(r *Registration) { rg.byHash[r.Hash] = r }

// Delete removes a registration, reporting whether it existed.
func (rg *Registry) Delete(hash uint64) bool {
	if _, ok := rg.byHash[hash]; !ok {
		return false
	}
	delete(rg.byHash, hash)
	return true
}

// Len returns the number of registered types.
func (rg *Registry) Len() int { return len(rg.byHash) }

// SentCache is the sender-side hash table of §III-D: which (endpoint,
// ifunc-type) pairs have already received the code section. Hits allow
// truncated transmission.
type SentCache struct {
	m map[sentKey]bool
	// Hits and Misses count cache decisions for reports.
	Hits, Misses uint64
}

type sentKey struct {
	dstNode int
	hash    uint64
}

// NewSentCache returns an empty cache.
func NewSentCache() *SentCache {
	return &SentCache{m: make(map[sentKey]bool)}
}

// Seen reports whether dst has already received code for hash, counting
// the lookup in the hit/miss stats.
func (c *SentCache) Seen(dstNode int, hash uint64) bool {
	if c.m[sentKey{dstNode, hash}] {
		c.Hits++
		return true
	}
	c.Misses++
	return false
}

// Contains reports whether dst has the code for hash without counting a
// cache decision — the peek the placement planner uses to predict the
// frame size a ship would transmit (only real sends count in Hits/Misses).
func (c *SentCache) Contains(dstNode int, hash uint64) bool {
	return c.m[sentKey{dstNode, hash}]
}

// Mark records that dst now has the code for hash.
func (c *SentCache) Mark(dstNode int, hash uint64) {
	c.m[sentKey{dstNode, hash}] = true
}

// Forget drops all entries for a type (re-registration invalidates).
func (c *SentCache) Forget(hash uint64) {
	for k := range c.m { //repolint:allow maprange — filter-delete of all matches, order-insensitive
		if k.hash == hash {
			delete(c.m, k)
		}
	}
}
