package passes

import "threechains/internal/ir"

// CSE performs block-local common-subexpression elimination over pure
// arithmetic: when two instructions in a block compute the same operation
// over the same operand registers (with no redefinition in between), the
// second becomes a copy of the first's result. Loads are deliberately
// excluded — without alias analysis an intervening store could invalidate
// them — which keeps the pass trivially sound.
type CSE struct{}

// Name implements Pass.
func (CSE) Name() string { return "cse" }

// exprKey identifies a pure computation. Commutative operations are
// canonicalized by ordering the operand registers.
type exprKey struct {
	op   ir.Opcode
	pred ir.Pred
	ty   ir.Type
	a, b ir.Reg
	imm  int64
	imm2 int64
}

// Run implements Pass.
func (CSE) Run(m *ir.Module, f *ir.Func) bool {
	changed := false
	for _, blk := range f.Blocks {
		avail := make(map[exprKey]ir.Reg)
		// defVersion tracks register redefinition: an expression is only
		// reusable while neither operand has been redefined since.
		version := make(map[ir.Reg]int)
		keyVersion := make(map[exprKey][2]int)

		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if key, ok := cseKey(in); ok {
				if prev, hit := avail[key]; hit {
					vs := keyVersion[key]
					if version[key.a] == vs[0] && version[key.b] == vs[1] {
						// Replace with a copy (canonical Or x,x form).
						*in = ir.Instr{Op: ir.OpOr, Ty: ir.I64, Dst: in.Dst, A: prev, B: prev}
						changed = true
						if in.Dst != ir.NoReg {
							version[in.Dst]++
						}
						continue
					}
				}
				avail[key] = in.Dst
				keyVersion[key] = [2]int{version[key.a], version[key.b]}
			}
			if in.Dst != ir.NoReg {
				version[in.Dst]++
			}
		}
	}
	return changed
}

// CopyProp forwards block-local register copies (the canonical Or x,x
// form that ConstFold, Simplify and CSE emit): uses of the copy's
// destination are rewritten to the source until either register is
// redefined, after which DCE can drop the dead copy.
type CopyProp struct{}

// Name implements Pass.
func (CopyProp) Name() string { return "copyprop" }

// Run implements Pass.
func (CopyProp) Run(m *ir.Module, f *ir.Func) bool {
	changed := false
	for _, blk := range f.Blocks {
		copyOf := make(map[ir.Reg]ir.Reg)
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			// Rewrite operands through the copy map.
			rewrite := func(r *ir.Reg) {
				if src, ok := copyOf[*r]; ok {
					*r = src
					changed = true
				}
			}
			switch in.Op {
			case ir.OpConst, ir.OpFConst, ir.OpAlloca, ir.OpGlobal, ir.OpBr, ir.OpNop:
			case ir.OpCall:
				for ai := range in.Args {
					rewrite(&in.Args[ai])
				}
			default:
				if in.A != ir.NoReg {
					rewrite(&in.A)
				}
				if in.B != ir.NoReg {
					rewrite(&in.B)
				}
				if in.C != ir.NoReg {
					rewrite(&in.C)
				}
				for ai := range in.Args {
					rewrite(&in.Args[ai])
				}
			}
			// Redefinition invalidates copies involving the destination.
			if in.Dst != ir.NoReg {
				delete(copyOf, in.Dst)
				for dst, src := range copyOf { //repolint:allow maprange — filter-delete of all matches, order-insensitive
					if src == in.Dst {
						delete(copyOf, dst)
					}
				}
			}
			// Record fresh copies.
			if in.Op == ir.OpOr && in.A == in.B && in.Dst != ir.NoReg && in.A != in.Dst {
				copyOf[in.Dst] = in.A
			}
		}
	}
	return changed
}

// cseKey returns the value-numbering key for instructions CSE may merge.
func cseKey(in *ir.Instr) (exprKey, bool) {
	switch in.Op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		// Commutative: canonical operand order.
		a, b := in.A, in.B
		if b < a {
			a, b = b, a
		}
		return exprKey{op: in.Op, ty: in.Ty, a: a, b: b}, true
	case ir.OpSub, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul:
		return exprKey{op: in.Op, ty: in.Ty, a: in.A, b: in.B}, true
	case ir.OpICmp, ir.OpFCmp:
		return exprKey{op: in.Op, pred: in.Pred, ty: in.Ty, a: in.A, b: in.B}, true
	case ir.OpPtrAdd:
		return exprKey{op: in.Op, ty: in.Ty, a: in.A, b: in.B, imm: in.Imm, imm2: in.Imm2}, true
	case ir.OpTrunc, ir.OpSExt, ir.OpSIToFP, ir.OpUIToFP:
		return exprKey{op: in.Op, ty: in.Ty, a: in.A, b: ir.NoReg}, true
	}
	return exprKey{}, false
}
