package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in a stable LLVM-flavoured textual form.
// The output is for humans, logs and golden tests; bitcode (package
// bitcode) is the machine interchange format.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %q source=%s", m.Name, m.Source)
	if m.TargetHint != "" {
		fmt.Fprintf(&sb, " target=%s", m.TargetHint)
	}
	sb.WriteByte('\n')
	for _, d := range m.Deps {
		fmt.Fprintf(&sb, "dep %q\n", d)
	}
	for _, e := range m.Externs {
		fmt.Fprintf(&sb, "extern @%s\n", e)
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global @%s [%d bytes, %d init]\n", g.Name, g.Size, len(g.Init))
	}
	for _, f := range m.Funcs {
		printFunc(&sb, f)
	}
	return sb.String()
}

func printFunc(sb *strings.Builder, f *Func) {
	var ps []string
	for i, p := range f.Params {
		ps = append(ps, fmt.Sprintf("%s %%r%d", p, i))
	}
	fmt.Fprintf(sb, "\nfunc @%s(%s) %s {\n", f.Name, strings.Join(ps, ", "), f.Ret)
	for bi, blk := range f.Blocks {
		name := blk.Name
		if name == "" {
			name = fmt.Sprintf("b%d", bi)
		}
		fmt.Fprintf(sb, "%s: ; block %d\n", name, bi)
		for i := range blk.Instrs {
			fmt.Fprintf(sb, "  %s\n", FormatInstr(&blk.Instrs[i]))
		}
	}
	sb.WriteString("}\n")
}

// FormatInstr renders a single instruction.
func FormatInstr(in *Instr) string {
	dst := ""
	if in.Dst != NoReg {
		dst = fmt.Sprintf("%s = ", in.Dst)
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpUDiv, OpSRem, OpURem,
		OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv:
		return fmt.Sprintf("%s%s %s, %s", dst, in.Op, in.A, in.B)
	case OpConst:
		return fmt.Sprintf("%s%s %s %d", dst, in.Op, in.Ty, in.Imm)
	case OpFConst:
		return fmt.Sprintf("%s%s %s %g", dst, in.Op, in.Ty, f64frombits(uint64(in.Imm)))
	case OpICmp, OpFCmp:
		return fmt.Sprintf("%s%s %s %s, %s", dst, in.Op, in.Pred, in.A, in.B)
	case OpTrunc, OpSExt:
		return fmt.Sprintf("%s%s %s %s", dst, in.Op, in.Ty, in.A)
	case OpSIToFP, OpUIToFP, OpFPToSI, OpFPToUI:
		return fmt.Sprintf("%s%s %s", dst, in.Op, in.A)
	case OpSelect:
		return fmt.Sprintf("%s%s %s, %s, %s", dst, in.Op, in.A, in.B, in.C)
	case OpAlloca:
		return fmt.Sprintf("%s%s %d", dst, in.Op, in.Imm)
	case OpLoad:
		return fmt.Sprintf("%s%s %s [%s + %d]", dst, in.Op, in.Ty, in.A, in.Imm)
	case OpStore:
		return fmt.Sprintf("%s %s %s -> [%s + %d]", in.Op, in.Ty, in.A, in.B, in.Imm)
	case OpPtrAdd:
		return fmt.Sprintf("%s%s %s + %s*%d + %d", dst, in.Op, in.A, in.B, in.Imm2, in.Imm)
	case OpGlobal:
		return fmt.Sprintf("%s%s @%s", dst, in.Op, in.Sym)
	case OpBr:
		return fmt.Sprintf("%s ->%d", in.Op, in.T0)
	case OpCondBr:
		return fmt.Sprintf("%s %s ->%d ->%d", in.Op, in.A, in.T0, in.T1)
	case OpRet:
		if in.A == NoReg {
			return "ret void"
		}
		return fmt.Sprintf("ret %s", in.A)
	case OpCall:
		var as []string
		for _, a := range in.Args {
			as = append(as, a.String())
		}
		return fmt.Sprintf("%scall @%s(%s)", dst, in.Sym, strings.Join(as, ", "))
	case OpAtomicAdd:
		return fmt.Sprintf("%s%s [%s], %s", dst, in.Op, in.A, in.B)
	case OpAtomicCAS:
		return fmt.Sprintf("%s%s [%s], %s, %s", dst, in.Op, in.A, in.B, in.C)
	case OpVSet:
		return fmt.Sprintf("%s [%s], %s x %s", in.Op, in.A, in.B, in.C)
	case OpVCopy:
		return fmt.Sprintf("%s [%s] <- [%s] x %s", in.Op, in.A, in.B, in.C)
	case OpVBinOp:
		return fmt.Sprintf("%s %s [%s] = [%s], [%s] x %s", in.Op, in.Pred, in.A, in.B, in.C, in.Args[0])
	case OpVReduce:
		return fmt.Sprintf("%s%s %s [%s] x %s", dst, in.Op, in.Pred, in.A, in.B)
	case OpTrap:
		return fmt.Sprintf("trap %d", in.Imm)
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("%s%s %s %s %s", dst, in.Op, in.A, in.B, in.C)
	}
}
