package place

import (
	"testing"

	"threechains/internal/sim"
	"threechains/internal/testbed"
	"threechains/internal/ucx"
)

// model builds a Thor-flavoured cost model: a fast Xeon host (local)
// against a remote node scaled by mult (1 = symmetric, >1 = wimpy DPU).
func model(mult float64) CostModel {
	p := testbed.ThorXeon()
	return CostModel{
		Net:    p.Net,
		Local:  NodeTraits{March: p.March(), ExecMult: 1, IfuncPoll: p.IfuncPoll},
		Remote: NodeTraits{March: p.March(), ExecMult: mult, IfuncPoll: p.IfuncPoll},
	}
}

// req is a baseline remote request: warm caches both sides, cheap kernel,
// small region.
func req() Request {
	return Request{
		PayloadLen: 8, DataBytes: 64, WriteBack: true,
		FrameBytes: 33, RemoteRegistered: true, LocalRegistered: true,
		MeanSteps: 8, Measured: true, PullViable: true, ShipViable: true,
	}
}

// TestCostModelRanking checks the model ranks routes the way the
// simulation's own charges do on the extremes the planner must get right.
func TestCostModelRanking(t *testing.T) {
	// Heavy kernel against an 8x-slower remote node, small region: the
	// remote execution dominates — pull must win.
	r := req()
	r.MeanSteps = 20000
	m := model(8)
	if ship, pull := m.ShipCost(r), m.PullCost(r); pull >= ship {
		t.Errorf("heavy/slow-remote/small-region: pull %v !< ship %v", pull, ship)
	}

	// Cheap cached kernel, large region, symmetric nodes: the region
	// transfer dominates — ship (26-byte truncated frame) must win.
	r = req()
	r.DataBytes = 16 << 10
	m = model(1)
	if ship, pull := m.ShipCost(r), m.PullCost(r); ship >= pull {
		t.Errorf("cheap/large-region: ship %v !< pull %v", ship, pull)
	}

	// Uncached module: ship pays the full frame + remote JIT; pull with a
	// warm local registration skips both — pull must win even with a
	// moderate region.
	r = req()
	r.RemoteRegistered = false
	r.FrameBytes = 5200
	r.RemoteRegCost = 800 * sim.Microsecond
	r.DataBytes = 1024
	if ship, pull := m.ShipCost(r), m.PullCost(r); pull >= ship {
		t.Errorf("uncached-remote: pull %v !< ship %v", pull, ship)
	}

	// Write-back costs the pull route a PUT: a read-only request must
	// price strictly cheaper than the same request with write-back.
	r = req()
	r.DataBytes = 4096
	wb := m.PullCost(r)
	r.WriteBack = false
	if ro := m.PullCost(r); ro >= wb {
		t.Errorf("read-only pull %v !< write-back pull %v", ro, wb)
	}
}

// TestPlannerPolicies pins the forced policies and the fallback.
func TestPlannerPolicies(t *testing.T) {
	m := model(1)

	p := &Planner{Policy: PolicyShipCode}
	d, err := p.Decide(m, req())
	if err != nil || d.Route != RouteShipCode {
		t.Fatalf("ship policy: %v route %v", err, d.Route)
	}

	p = &Planner{Policy: PolicyPullData}
	if d, _ = p.Decide(m, req()); d.Route != RoutePullData {
		t.Fatalf("pull policy routed %v", d.Route)
	}
	r := req()
	r.PullViable = false
	if d, _ = p.Decide(m, r); d.Route != RouteShipCode {
		t.Fatalf("non-viable pull routed %v, want ship fallback", d.Route)
	}
	if p.Stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", p.Stats.Fallbacks)
	}

	// Local data degenerates every policy to run-local.
	for _, pol := range []Policy{PolicyCostModel, PolicyShipCode, PolicyPullData, PolicyLocal} {
		p = &Planner{Policy: pol}
		r = req()
		r.DstIsLocal = true
		if d, err = p.Decide(m, r); err != nil || d.Route != RouteLocal {
			t.Fatalf("%v with local data: %v route %v", pol, err, d.Route)
		}
	}

	// PolicyLocal rejects remote regions.
	p = &Planner{Policy: PolicyLocal}
	if _, err = p.Decide(m, req()); err == nil {
		t.Fatal("PolicyLocal accepted a remote region")
	}
}

// TestPlannerDeterminism: identical request streams yield identical
// decision traces — the property the runtime-level differential tests
// extend across engines. Covered for both the zero-load cost model and
// the stateful queueing policy (whose horizons evolve with every
// committed decision).
func TestPlannerDeterminism(t *testing.T) {
	m := model(4)
	mk := func(pol Policy) []Decision {
		var trace []Decision
		p := &Planner{Policy: pol, OnCommit: func(d Decision) { trace = append(trace, d) }}
		w := Generate(WorkloadParams{Seed: 11, Ops: 40})
		for i, op := range w.Ops {
			r := req()
			r.DstIsLocal = op.Dst == 0
			r.Dst = op.Dst
			r.Now = sim.Time(i) * 3 * sim.Microsecond
			r.PayloadLen = op.PayloadLen
			r.DataBytes = w.RegionWords[op.Dst] * 8
			r.MeanSteps = float64(10 + w.Types[op.Type].Iters*3)
			if _, err := p.Decide(m, r); err != nil {
				t.Fatal(err)
			}
		}
		return trace
	}
	for _, pol := range []Policy{PolicyCostModel, PolicyCostModelQueue} {
		a, b := mk(pol), mk(pol)
		if len(a) != len(b) {
			t.Fatalf("%v: trace lengths differ: %d vs %d", pol, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: decision %d differs: %+v vs %+v", pol, i, a[i], b[i])
			}
		}
	}
}

// TestPlanCommitSplit: Plan records nothing; Commit records everything —
// the contract that keeps launch failures out of the route mix.
func TestPlanCommitSplit(t *testing.T) {
	m := model(1)
	var trace []Decision
	p := &Planner{OnCommit: func(d Decision) { trace = append(trace, d) }}
	d, err := p.Plan(PolicyShipCode, m, req())
	if err != nil || d.Route != RouteShipCode {
		t.Fatalf("plan: %v route %v", err, d.Route)
	}
	if p.Stats != (Stats{}) || len(trace) != 0 {
		t.Fatalf("Plan recorded: stats %+v trace %d", p.Stats, len(trace))
	}
	p.Commit(d)
	if p.Stats.Ship != 1 || len(trace) != 1 {
		t.Fatalf("Commit did not record: stats %+v trace %d", p.Stats, len(trace))
	}
	// Plan must not touch the configured policy either.
	if p.Policy != PolicyCostModel {
		t.Fatalf("Plan changed Policy to %v", p.Policy)
	}
}

// TestQueuePolicyIdleMatchesZeroLoad: with every horizon expired the
// queueing policy's estimates and route equal the zero-load model's —
// queueing terms are a strict extension, not a different model.
func TestQueuePolicyIdleMatchesZeroLoad(t *testing.T) {
	cases := []func(*Request){
		func(r *Request) {},
		func(r *Request) { r.MeanSteps = 20000 },
		func(r *Request) { r.DataBytes = 16 << 10 },
		func(r *Request) {
			r.RemoteRegistered = false
			r.FrameBytes = 5200
			r.RemoteRegCost = 800 * sim.Microsecond
		},
		func(r *Request) { r.WriteBack = false },
		func(r *Request) { r.Now = 5 * sim.Millisecond }, // late issue, still idle
	}
	for mult := 1; mult <= 8; mult *= 2 {
		m := model(float64(mult))
		for i, mut := range cases {
			r := req()
			mut(&r)
			pq := &Planner{}
			dq, err := pq.Plan(PolicyCostModelQueue, m, r)
			if err != nil {
				t.Fatal(err)
			}
			pz := &Planner{}
			dz, err := pz.Plan(PolicyCostModel, m, r)
			if err != nil {
				t.Fatal(err)
			}
			if dq.Route != dz.Route {
				t.Errorf("mult %d case %d: queue route %v != zero-load %v", mult, i, dq.Route, dz.Route)
			}
			if dq.EstShip != m.ShipCost(r) || dq.EstPull != m.PullCost(r) {
				t.Errorf("mult %d case %d: idle queue estimates (%v, %v) != zero-load costs (%v, %v)",
					mult, i, dq.EstShip, dq.EstPull, m.ShipCost(r), m.PullCost(r))
			}
		}
	}
}

// TestQueuePolicyDivertsUnderLoad: a request the zero-load model routes
// pull diverts to ship once enough committed pulls have filled the local
// core's horizon — and reverts once the horizons have expired.
func TestQueuePolicyDivertsUnderLoad(t *testing.T) {
	m := model(3) // remote 3x slower: pull wins at zero load
	r := req()
	r.MeanSteps = 20000
	r.DataBytes = 1024
	p := &Planner{}
	d, err := p.Plan(PolicyCostModelQueue, m, r)
	if err != nil || d.Route != RoutePullData {
		t.Fatalf("zero load: %v route %v, want pull", err, d.Route)
	}
	shipped := -1
	for i := 0; i < 64; i++ {
		d, err := p.Plan(PolicyCostModelQueue, m, r)
		if err != nil {
			t.Fatal(err)
		}
		if d.Route == RouteShipCode {
			shipped = i
			break
		}
		p.Commit(d)
	}
	if shipped < 0 {
		t.Fatal("64 committed pulls never diverted a request to ship")
	}
	if shipped == 0 {
		t.Fatal("diverted before any load existed")
	}
	// Far enough in the future every horizon has expired: pull again.
	r2 := r
	r2.Now = 10 * sim.Second
	if d, _ := p.Plan(PolicyCostModelQueue, m, r2); d.Route != RoutePullData {
		t.Fatalf("expired horizons still divert: route %v", d.Route)
	}
}

// TestRouteViability pins the planner's handling of unshippable and
// unpullable requests under every policy.
func TestRouteViability(t *testing.T) {
	m := model(1)
	noShip := req()
	noShip.ShipViable = false
	nothing := noShip
	nothing.PullViable = false

	for _, pol := range []Policy{PolicyCostModel, PolicyCostModelQueue} {
		p := &Planner{}
		if d, err := p.Plan(pol, m, noShip); err != nil || d.Route != RoutePullData {
			t.Errorf("%v unshippable: %v route %v, want pull", pol, err, d.Route)
		}
		if _, err := p.Plan(pol, m, nothing); err == nil {
			t.Errorf("%v accepted a request with no viable route", pol)
		}
	}
	p := &Planner{}
	if _, err := p.Plan(PolicyShipCode, m, noShip); err == nil {
		t.Error("forced ship of an unshippable request accepted")
	}
	if _, err := p.Plan(PolicyPullData, m, nothing); err == nil {
		t.Error("pull fallback shipped an unshippable request")
	}
	// Pull-policy fallback still ships when ship is viable.
	noPull := req()
	noPull.PullViable = false
	if d, err := p.Plan(PolicyPullData, m, noPull); err != nil || d.Route != RouteShipCode || !d.Fallback {
		t.Errorf("pull fallback: %v route %v fallback %v", err, d.Route, d.Fallback)
	}
}

// TestInvestmentAwareShipAmortizesColdRegistration pins satellite
// behavior: as the planner commits demand for a (type, dst) pair, a cold
// remote registration's price is divided across the modeled fan-out, so
// a pair with real traffic eventually ships where a demand-blind model
// kept pulling forever.
func TestInvestmentAwareShipAmortizesColdRegistration(t *testing.T) {
	m := model(1)
	r := req()
	r.TypeHash = 0x1234
	r.Dst = 3
	r.RemoteRegistered = false
	r.FrameBytes = 5200
	r.RemoteRegCost = 60 * sim.Microsecond
	r.DataBytes = 16 << 10

	p := &Planner{Policy: PolicyCostModel}
	first, err := p.Plan(PolicyCostModel, m, r)
	if err != nil {
		t.Fatal(err)
	}
	if first.Route != RoutePullData {
		t.Fatalf("cold pair with no demand routed %v, want pull (full JIT billed to one message)", first.Route)
	}
	// Commit a stream of decisions for the pair: every commit is an
	// observation of demand.
	for i := 0; i < investCap; i++ {
		p.Commit(first)
	}
	later, err := p.Plan(PolicyCostModel, m, r)
	if err != nil {
		t.Fatal(err)
	}
	if !later.Priced || later.Route != RouteShipCode {
		t.Fatalf("hot pair still routed %+v, want priced ship (JIT amortized over %d observed messages)", later, investCap)
	}
	if later.EstShip >= first.EstShip {
		t.Fatalf("amortized ship %v !< unamortized %v", later.EstShip, first.EstShip)
	}
	// Types that opt out (TypeHash 0) never amortize: the estimate is
	// independent of committed demand.
	r0 := r
	r0.TypeHash = 0
	opted, err := p.Plan(PolicyCostModel, m, r0)
	if err != nil {
		t.Fatal(err)
	}
	if opted.EstShip != first.EstShip {
		t.Fatalf("untracked type amortized: %v, want %v", opted.EstShip, first.EstShip)
	}
	// Demand is per (type, dst): another destination starts cold.
	r2 := r
	r2.Dst = 7
	other, err := p.Plan(PolicyCostModel, m, r2)
	if err != nil {
		t.Fatal(err)
	}
	if other.EstShip != first.EstShip {
		t.Fatalf("demand leaked across destinations: %v, want %v", other.EstShip, first.EstShip)
	}
}

// TestPullCostPricesMeasuredDelta pins the write-back pricing: a request
// carrying a measured delta (PutBytes) prices the put leg by the delta,
// not the region — and the fallback (PutBytes 0) prices the region.
func TestPullCostPricesMeasuredDelta(t *testing.T) {
	m := model(1)
	r := req()
	r.DataBytes = 16 << 10
	whole := m.PullCost(r)
	r.PutBytes = 20
	delta := m.PullCost(r)
	if delta >= whole {
		t.Fatalf("delta-priced pull %v !< whole-region pull %v", delta, whole)
	}
	// The saving is the per-byte wire time of the elided bytes (the
	// fixed latency term is paid either way).
	if want := whole - (m.Net.WireTime(ucx.PutHeaderBytes+r.DataBytes) - m.Net.WireTime(ucx.PutHeaderBytes+r.PutBytes)); delta != want {
		t.Fatalf("delta pull %v, want %v", delta, want)
	}
	// The queued estimate agrees at idle.
	p := &Planner{}
	qd, _ := m.pullQueued(r, &p.queue)
	if qd != delta {
		t.Fatalf("idle queued pull %v, want %v", qd, delta)
	}
}
