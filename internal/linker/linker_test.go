package linker

import (
	"errors"
	"testing"

	"threechains/internal/ir"
	"threechains/internal/isa"
	"threechains/internal/mcode"
)

func libM() *DynLib {
	lib := NewDynLib("libm.so")
	lib.Funcs["m.abs"] = func(a []uint64) (uint64, error) {
		if int64(a[0]) < 0 {
			return uint64(-int64(a[0])), nil
		}
		return a[0], nil
	}
	lib.Data["m.pi"] = 3141
	return lib
}

func TestProvideAndLoad(t *testing.T) {
	ld := NewLoader()
	if err := ld.Provide(libM()); err != nil {
		t.Fatal(err)
	}
	if ld.Loaded("libm.so") {
		t.Fatal("provide must not load")
	}
	if _, ok := ld.BindFunc("m.abs"); ok {
		t.Fatal("symbol bound before load")
	}
	if err := ld.LoadDeps([]string{"libm.so"}); err != nil {
		t.Fatal(err)
	}
	if !ld.Loaded("libm.so") || ld.LoadsPerformed != 1 {
		t.Fatal("load bookkeeping wrong")
	}
	if _, ok := ld.BindFunc("m.abs"); !ok {
		t.Fatal("function not bound after load")
	}
	if a, ok := ld.BindData("m.pi"); !ok || a != 3141 {
		t.Fatal("data not bound after load")
	}
	// Idempotent loads do not recount.
	if err := ld.LoadDeps([]string{"libm.so", "libm.so"}); err != nil {
		t.Fatal(err)
	}
	if ld.LoadsPerformed != 1 {
		t.Fatalf("reload counted: %d", ld.LoadsPerformed)
	}
}

func TestMissingLibraryFails(t *testing.T) {
	ld := NewLoader()
	if err := ld.LoadDeps([]string{"libghost.so"}); !errors.Is(err, ErrNoLibrary) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateLibraryRejected(t *testing.T) {
	ld := NewLoader()
	if err := ld.Provide(libM()); err != nil {
		t.Fatal(err)
	}
	if err := ld.Provide(libM()); !errors.Is(err, ErrDupLibrary) {
		t.Fatalf("err = %v", err)
	}
}

func TestPreload(t *testing.T) {
	ld := NewLoader()
	if err := ld.Preload(libM()); err != nil {
		t.Fatal(err)
	}
	if !ld.Loaded("libm.so") {
		t.Fatal("preload did not load")
	}
}

// lowerWithSyms builds a compiled module referencing an extern function,
// an extern data symbol and a module-local global.
func lowerWithSyms(t *testing.T) *mcode.CompiledModule {
	t.Helper()
	m := ir.NewModule("patchme")
	b := ir.NewBuilder(m)
	b.AddGlobal("local.tbl", 8, nil)
	b.DeclareExtern("m.abs")
	b.DeclareExtern("m.pi")
	b.AddDep("libm.so")
	b.NewFunc("main", []ir.Type{ir.I64}, ir.I64)
	g := b.GlobalAddr("local.tbl")
	pi := b.GlobalAddr("m.pi")
	v := b.Call("m.abs", true, b.Param(0))
	b.Store(ir.I64, v, g, 0)
	b.Ret(b.Add(v, pi))
	cm, err := mcode.Lower(m, isa.XeonE5())
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestPatchGOTResolvesAllKinds(t *testing.T) {
	ld := NewLoader()
	if err := ld.Preload(libM()); err != nil {
		t.Fatal(err)
	}
	cm := lowerWithSyms(t)
	link, err := PatchGOT(cm, map[string]uint64{"local.tbl": 512}, ld)
	if err != nil {
		t.Fatal(err)
	}
	env := ir.NewSimpleEnv(1 << 12)
	ma, err := mcode.NewMachine(cm, env, link, ir.ExecLimits{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ma.Run("main", ^uint64(6)) // -7
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 7+3141 {
		t.Fatalf("got %d, want %d", res.Value, 7+3141)
	}
	if env.LoadU64(512) != 7 {
		t.Fatalf("local global not patched to 512: %d", env.LoadU64(512))
	}
}

func TestPatchGOTMissingFunction(t *testing.T) {
	ld := NewLoader() // libm never provided
	cm := lowerWithSyms(t)
	if _, err := PatchGOT(cm, map[string]uint64{"local.tbl": 512}, ld); !errors.Is(err, ErrNoSymbol) {
		t.Fatalf("err = %v", err)
	}
}

func TestPatchGOTMissingModuleGlobal(t *testing.T) {
	ld := NewLoader()
	if err := ld.Preload(libM()); err != nil {
		t.Fatal(err)
	}
	cm := lowerWithSyms(t)
	// Forget to allocate the module global: unresolved data symbol.
	if _, err := PatchGOT(cm, nil, ld); !errors.Is(err, ErrNoSymbol) {
		t.Fatalf("err = %v", err)
	}
}

func TestPatchGOTPureModule(t *testing.T) {
	m := ir.NewModule("pure")
	b := ir.NewBuilder(m)
	b.NewFunc("main", []ir.Type{ir.I64}, ir.I64)
	b.Ret(b.Param(0))
	cm, err := mcode.Lower(m, isa.A64FX())
	if err != nil {
		t.Fatal(err)
	}
	link, err := PatchGOT(cm, nil, NewLoader())
	if err != nil {
		t.Fatal(err)
	}
	if len(link.Funcs) != 0 {
		t.Fatal("pure module produced GOT entries")
	}
}

func TestSymbolShadowing(t *testing.T) {
	// A later-loaded library wins for colliding symbols, like dlopen
	// RTLD_GLOBAL ordering.
	ld := NewLoader()
	a := NewDynLib("a.so")
	a.Funcs["f"] = func([]uint64) (uint64, error) { return 1, nil }
	b := NewDynLib("b.so")
	b.Funcs["f"] = func([]uint64) (uint64, error) { return 2, nil }
	if err := ld.Preload(a); err != nil {
		t.Fatal(err)
	}
	if err := ld.Preload(b); err != nil {
		t.Fatal(err)
	}
	fn, _ := ld.BindFunc("f")
	if v, _ := fn(nil); v != 2 {
		t.Fatalf("shadowing order wrong: %d", v)
	}
}
