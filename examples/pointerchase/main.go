// Pointer chase: the X-RDMA DAPC miniapp from the paper's §IV-C.
//
// A Xeon client drives four BlueField-2 DPU servers holding shards of a
// pointer table. The chaser ifunc follows pointers locally, forwards
// itself to the shard owner when the chain crosses servers, and returns
// the final value to the client — all without any code predeployed on the
// DPUs. The same chase is then repeated with client-driven RDMA GETs
// (GBPC) for comparison.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"threechains"
	"threechains/internal/bench"
	"threechains/internal/core"
	"threechains/internal/ir"
	"threechains/internal/sim"
	"threechains/internal/testbed"
)

const (
	servers = 4
	shard   = 1024 // entries per server
	depth   = 512
)

func main() {
	// Build the cluster by hand to show the full setup (the bench
	// package automates all of this for the paper's figures).
	profile := testbed.ThorMixed()
	specs := []core.NodeSpec{{Name: "client", March: testbed.ThorXeon().March()}}
	for i := 0; i < servers; i++ {
		specs = append(specs, core.NodeSpec{Name: fmt.Sprintf("dpu%d", i), March: profile.March()})
	}
	cl := core.NewCluster(profile.Net, specs)
	client := cl.Runtime(0)

	// One permutation cycle over all entries, sharded server-first.
	rng := rand.New(rand.NewSource(1))
	n := uint64(servers * shard)
	perm := rng.Perm(int(n))
	next := make([]uint64, n)
	for i := uint64(0); i < n; i++ {
		next[uint64(perm[i])] = uint64(perm[(i+1)%n])
	}
	for s := 0; s < servers; s++ {
		rt := cl.Runtime(1 + s)
		base := rt.Node.Alloc(shard * 8)
		for i := 0; i < shard; i++ {
			threechains.StoreU64(rt, base+uint64(i)*8, next[uint64(s*shard+i)])
		}
		ctx := rt.Node.Alloc(threechains.SrvCtxBytes)
		threechains.StoreU64(rt, ctx+threechains.SrvCtxTableBase, base)
		threechains.StoreU64(rt, ctx+threechains.SrvCtxShardSize, shard)
		threechains.StoreU64(rt, ctx+threechains.SrvCtxNumServers, servers)
		threechains.StoreU64(rt, ctx+threechains.SrvCtxFirstServer, 1)
		rt.TargetPtr = ctx
	}
	client.TargetPtr = client.Node.Alloc(8) // result slot

	// Register the chaser and make the client able to run ReturnResult.
	h, err := client.RegisterBitcode("dapc", threechains.BuildChaser(), threechains.PaperTriples())
	if err != nil {
		log.Fatal(err)
	}
	if err := client.RegisterLocal(h); err != nil {
		log.Fatal(err)
	}

	// Run three chases from random starting entries.
	fmt.Printf("DAPC on %d DPU servers, depth %d:\n", servers, depth)
	for i := 0; i < 3; i++ {
		start := uint64(rng.Int63n(int64(n)))
		payload := make([]byte, threechains.ChaseBytes)
		put64(payload, threechains.ChaseAddr, start)
		put64(payload, threechains.ChaseDepth, depth)
		put64(payload, threechains.ChaseDest, 0)
		done := client.SetCompletion()
		t0 := cl.Eng.Now()
		owner := int(start / shard)
		if _, err := client.Send(1+owner, h, "chase", payload); err != nil {
			log.Fatal(err)
		}
		var result uint64
		var elapsed sim.Time
		cl.Eng.Go("wait", func(p *sim.Proc) {
			result = p.Await(done)
			elapsed = p.Now() - t0
		})
		cl.Run()
		fmt.Printf("  chase %d: start=%5d final=%5d  %v\n", i+1, start, result, elapsed)
	}
	var hops uint64
	for _, rt := range cl.Runtimes {
		hops += rt.Stats.GuestSends
	}
	fmt.Printf("ifunc forwards issued by guest code: %d\n\n", hops)

	// The GBPC comparison, using the bench harness end to end.
	cfg := threechains.DAPCConfig{
		Profile: profile, ClientMarch: testbed.ThorXeon().March,
		Servers: servers, EntriesPerServer: shard, Depth: depth, Chases: 6,
	}
	ifuncRes, err := bench.RunDAPC(cfg, bench.DAPCBitcode)
	if err != nil {
		log.Fatal(err)
	}
	getRes, err := bench.RunDAPC(cfg, bench.DAPCGet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("throughput, ifunc (X-RDMA): %8.1f chases/s\n", ifuncRes.RateChasesSec)
	fmt.Printf("throughput, RDMA GET      : %8.1f chases/s\n", getRes.RateChasesSec)
	fmt.Printf("X-RDMA advantage          : %+.1f%%\n",
		100*(ifuncRes.RateChasesSec/getRes.RateChasesSec-1))
	_ = ir.Print // keep the ir import for documentation links
}

func put64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}
