// Quickstart: move code and data to a remote node.
//
// A two-node Thor-Xeon cluster is created; the host registers the TSI
// (target-side increment) ifunc as fat bitcode and sends it to the peer
// three times. The first message carries the ~5 KiB archive and pays a
// one-time JIT compilation on the receiver; the next two are truncated to
// 26 bytes by the transparent code cache and execute in microseconds.
package main

import (
	"fmt"
	"log"

	"threechains"
)

func main() {
	profile := threechains.ThorXeon()
	cl := threechains.NewCluster(profile)
	src, dst := cl.Runtime(0), cl.Runtime(1)

	// The target pointer: a counter in the destination node's memory.
	counter := dst.Node.Alloc(8)
	dst.TargetPtr = counter

	// Register the ifunc library (this is the paper's Figure-1 workflow:
	// the toolchain optimizes, attaches debug info and packs bitcode for
	// every target ISA).
	raw, err := threechains.BuildArchive(threechains.BuildTSI(), threechains.PaperTriples())
	if err != nil {
		log.Fatal(err)
	}
	handle, err := src.RegisterArchive("tsi", raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %q: %d bytes of fat bitcode for [%s]\n",
		handle.Name, len(handle.ArchiveBytes), profile.Name)

	for i := 1; i <= 3; i++ {
		sentBefore := src.Node.Stats.BytesSent
		start := cl.Eng.Now()
		if _, err := src.Send(1, handle, "main", []byte{0}); err != nil {
			log.Fatal(err)
		}
		cl.Run() // drive the simulation until idle
		v, _ := threechains.LoadU64(dst, counter)
		fmt.Printf("message %d: %5d bytes on the wire, %-10v elapsed, counter=%d\n",
			i, src.Node.Stats.BytesSent-sentBefore, cl.Eng.Now()-start, v)
	}

	fmt.Printf("\ndestination stats: %d executions, %d JIT compiles (code cached after the first)\n",
		dst.Stats.Executions, dst.Stats.JITCompiles)
	fmt.Printf("sender frames: %d full, %d truncated\n",
		src.Stats.FullFrames, src.Stats.TruncatedFrames)
}
