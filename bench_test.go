// Benchmarks regenerating the paper's evaluation (§V): one benchmark per
// table and figure, plus ablations over the design choices DESIGN.md
// calls out and wall-clock microbenchmarks of the infrastructure itself.
//
// Simulated metrics (latencies, message rates, chase rates) are virtual
// time, reported through b.ReportMetric with explicit units; they are
// deterministic and do not vary with b.N. The figure benchmarks use
// reduced grids so `go test -bench=.` stays fast; cmd/paperbench runs the
// full paper grid.
package threechains_test

import (
	"fmt"
	"testing"

	"threechains/internal/bench"
	"threechains/internal/bitcode"
	"threechains/internal/core"
	"threechains/internal/ir"
	"threechains/internal/isa"
	"threechains/internal/jit"
	"threechains/internal/linker"
	"threechains/internal/mcode"
	"threechains/internal/minilang"
	"threechains/internal/passes"
	"threechains/internal/testbed"
	"threechains/internal/toolchain"
)

// reportTSI reports one table row's metrics.
func reportTSI(b *testing.B, r bench.TSIResult) {
	b.ReportMetric(r.LatencyUS, "µs/lat")
	b.ReportMetric(r.RateMsgSec/1e6, "Mmsg/s")
	b.ReportMetric(float64(r.MsgBytes), "wire-B")
	if r.JITms > 0 {
		b.ReportMetric(r.JITms, "JIT-ms")
	}
}

// tsiBench runs one (platform, mode) cell under b.
func tsiBench(b *testing.B, p testbed.Profile, mode bench.TSIMode) {
	var r bench.TSIResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.RunTSI(p, mode)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportTSI(b, r)
}

// --- Tables I-III: TSI overhead breakdowns (the per-mode cells). -------

func BenchmarkTableI_OokamiTSIBreakdown(b *testing.B) {
	for _, m := range []bench.TSIMode{bench.TSIActiveMessage, bench.TSIBitcodeUncached, bench.TSIBitcodeCached} {
		b.Run(m.String(), func(b *testing.B) { tsiBench(b, testbed.Ookami(), m) })
	}
}

func BenchmarkTableII_ThorBF2TSIBreakdown(b *testing.B) {
	for _, m := range []bench.TSIMode{bench.TSIActiveMessage, bench.TSIBitcodeUncached, bench.TSIBitcodeCached} {
		b.Run(m.String(), func(b *testing.B) { tsiBench(b, testbed.ThorBF2(), m) })
	}
}

func BenchmarkTableIII_ThorXeonTSIBreakdown(b *testing.B) {
	for _, m := range []bench.TSIMode{bench.TSIActiveMessage, bench.TSIBitcodeUncached, bench.TSIBitcodeCached} {
		b.Run(m.String(), func(b *testing.B) { tsiBench(b, testbed.ThorXeon(), m) })
	}
}

// --- Tables IV-VI: latencies and message rates (incl. binary rows). ----

func BenchmarkTableIV_OokamiTSIRates(b *testing.B) {
	for _, m := range []bench.TSIMode{bench.TSIActiveMessage, bench.TSIBitcodeCached,
		bench.TSIBitcodeUncached, bench.TSIBinaryCached, bench.TSIBinaryUncached} {
		b.Run(m.String(), func(b *testing.B) { tsiBench(b, testbed.Ookami(), m) })
	}
}

func BenchmarkTableV_ThorBF2TSIRates(b *testing.B) {
	for _, m := range []bench.TSIMode{bench.TSIActiveMessage, bench.TSIBitcodeCached, bench.TSIBitcodeUncached} {
		b.Run(m.String(), func(b *testing.B) { tsiBench(b, testbed.ThorBF2(), m) })
	}
}

func BenchmarkTableVI_ThorXeonTSIRates(b *testing.B) {
	for _, m := range []bench.TSIMode{bench.TSIActiveMessage, bench.TSIBitcodeCached, bench.TSIBitcodeUncached} {
		b.Run(m.String(), func(b *testing.B) { tsiBench(b, testbed.ThorXeon(), m) })
	}
}

// --- Figures 5-12: DAPC depth sweeps and scaling sweeps. ----------------

// benchDepths is the reduced depth grid for `go test -bench` runs.
var benchDepths = []int{1, 64, 4096}

// dapcCell runs one figure cell and reports chases/second.
func dapcCell(b *testing.B, cfg bench.DAPCConfig, mode bench.DAPCMode) {
	var r bench.DAPCResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.RunDAPC(cfg, mode)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RateChasesSec, "chases/s")
	b.ReportMetric(r.RemoteHops, "hops/chase")
}

// figBench sweeps (mode × depth) cells for a depth figure.
func figBench(b *testing.B, cfg bench.DAPCConfig, modes []bench.DAPCMode) {
	for _, m := range modes {
		for _, d := range benchDepths {
			c := cfg
			c.Depth = d
			b.Run(fmt.Sprintf("%s/depth=%d", m, d), func(b *testing.B) { dapcCell(b, c, m) })
		}
	}
}

// scaleBench sweeps (mode × servers) cells for a scaling figure.
func scaleBench(b *testing.B, cfg bench.DAPCConfig, modes []bench.DAPCMode, servers []int) {
	cfg.Depth = 4096
	for _, m := range modes {
		for _, s := range servers {
			c := cfg
			c.Servers = s
			b.Run(fmt.Sprintf("%s/servers=%d", m, s), func(b *testing.B) { dapcCell(b, c, m) })
		}
	}
}

func cMode() []bench.DAPCMode {
	return []bench.DAPCMode{bench.DAPCActiveMessage, bench.DAPCGet, bench.DAPCBitcode}
}

func BenchmarkFig5_DAPCDepthThorBF2(b *testing.B) {
	cfg := bench.DAPCConfig{Profile: testbed.ThorMixed(), ClientMarch: isa.XeonE5, Servers: 32, Chases: 6}
	figBench(b, cfg, cMode())
}

func BenchmarkFig6_DAPCDepthOokami(b *testing.B) {
	cfg := bench.DAPCConfig{Profile: testbed.Ookami(), Servers: 64, Chases: 6}
	modes := append(cMode(), bench.DAPCBinary)
	figBench(b, cfg, modes)
}

func BenchmarkFig7_DAPCDepthThorXeon(b *testing.B) {
	cfg := bench.DAPCConfig{Profile: testbed.ThorXeon(), ClientMarch: isa.XeonE5, Servers: 16, Chases: 6}
	figBench(b, cfg, cMode())
}

func BenchmarkFig8_DAPCDepthJulia(b *testing.B) {
	cfg := bench.DAPCConfig{Profile: testbed.ThorMixed(), ClientMarch: isa.XeonE5, Servers: 32, Chases: 6}
	figBench(b, cfg, []bench.DAPCMode{bench.DAPCJulia, bench.DAPCBitcode})
}

func BenchmarkFig9_DAPCScaleThorBF2(b *testing.B) {
	cfg := bench.DAPCConfig{Profile: testbed.ThorMixed(), ClientMarch: isa.XeonE5, Chases: 6}
	scaleBench(b, cfg, cMode(), []int{2, 8, 32})
}

func BenchmarkFig10_DAPCScaleOokami(b *testing.B) {
	cfg := bench.DAPCConfig{Profile: testbed.Ookami(), Chases: 6}
	scaleBench(b, cfg, append(cMode(), bench.DAPCBinary), []int{2, 16, 64})
}

func BenchmarkFig11_DAPCScaleThorXeon(b *testing.B) {
	cfg := bench.DAPCConfig{Profile: testbed.ThorXeon(), ClientMarch: isa.XeonE5, Chases: 6}
	scaleBench(b, cfg, cMode(), []int{2, 8, 16})
}

func BenchmarkFig12_DAPCScaleJulia(b *testing.B) {
	cfg := bench.DAPCConfig{Profile: testbed.ThorMixed(), ClientMarch: isa.XeonE5, Chases: 6}
	scaleBench(b, cfg, []bench.DAPCMode{bench.DAPCJulia, bench.DAPCBitcode}, []int{2, 8, 32})
}

// --- Ablations over DESIGN.md's design choices. --------------------------

// BenchmarkAblationCaching compares steady-state TSI latency with the
// sender cache on vs off (design choice 1: transparent caching).
func BenchmarkAblationCaching(b *testing.B) {
	for _, mode := range []bench.TSIMode{bench.TSIBitcodeCached, bench.TSIBitcodeUncached} {
		b.Run(mode.String(), func(b *testing.B) { tsiBench(b, testbed.ThorXeon(), mode) })
	}
}

// BenchmarkAblationFatVsThinArchive quantifies the per-target byte cost
// of fat bitcode (design choice 2).
func BenchmarkAblationFatVsThinArchive(b *testing.B) {
	sets := map[string][]isa.Triple{
		"1-target": {isa.TripleXeon},
		"2-target": {isa.TripleXeon, isa.TripleA64FX},
		"3-target": {isa.TripleXeon, isa.TripleA64FX, isa.TripleBF2},
	}
	for name, triples := range sets {
		b.Run(name, func(b *testing.B) {
			var raw []byte
			var err error
			for i := 0; i < b.N; i++ {
				_, raw, err = toolchain.BuildArchive(core.BuildTSI(), toolchain.Options{
					Opt: passes.O2, Debug: true, Triples: triples,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(raw)), "archive-B")
		})
	}
}

// BenchmarkAblationTargetSideOpt shows µarch specialization (design
// choice 3): the same vector bitcode costs fewer virtual cycles on wider
// SIMD units.
func BenchmarkAblationTargetSideOpt(b *testing.B) {
	m := ir.NewModule("vecsum")
	bb := ir.NewBuilder(m)
	bb.NewFunc("main", []ir.Type{ir.Ptr, ir.I64}, ir.I64)
	bb.VSet(bb.Param(0), bb.Const64(1), bb.Param(1))
	bb.Ret(bb.VReduce(ir.VPredAdd, bb.Param(0), bb.Param(1)))
	for _, march := range []*isa.MicroArch{isa.A64FX(), isa.XeonE5(), isa.CortexA72()} {
		b.Run(march.Name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cm, err := mcode.Lower(m, march)
				if err != nil {
					b.Fatal(err)
				}
				env := ir.NewSimpleEnv(1 << 16)
				ma, _ := mcode.NewMachine(cm, env, mcode.NewLinkage(cm), ir.ExecLimits{})
				if _, err := ma.Run("main", 0, 4096); err != nil {
					b.Fatal(err)
				}
				cycles = mcode.Cycles(&ma.Counts, march)
			}
			b.ReportMetric(cycles, "vcycles")
		})
	}
}

// BenchmarkAblationBinaryVsBitcode compares one-time deployment cost
// (design choice 4): JIT compilation vs binary load.
func BenchmarkAblationBinaryVsBitcode(b *testing.B) {
	for _, mode := range []bench.TSIMode{bench.TSIBitcodeUncached, bench.TSIBinaryUncached} {
		b.Run(mode.String(), func(b *testing.B) { tsiBench(b, testbed.ThorBF2(), mode) })
	}
}

// BenchmarkAblationLSEAtomics isolates the LSE story: the same atomic
// bitcode on a µarch with and without single-instruction atomics.
func BenchmarkAblationLSEAtomics(b *testing.B) {
	m := ir.NewModule("atomics")
	bb := ir.NewBuilder(m)
	bb.NewFunc("main", []ir.Type{ir.Ptr, ir.I64}, ir.I64)
	i := bb.Alloca(8)
	bb.Store(ir.I64, bb.Const64(0), i, 0)
	head := bb.NewBlock("head")
	body := bb.NewBlock("body")
	exit := bb.NewBlock("exit")
	bb.Br(head)
	bb.SetBlock(head)
	iv := bb.Load(ir.I64, i, 0)
	bb.CondBr(bb.ICmp(ir.PredSLT, iv, bb.Param(1)), body, exit)
	bb.SetBlock(body)
	bb.AtomicAdd(bb.Param(0), bb.Const64(1))
	bb.Store(ir.I64, bb.Add(iv, bb.Const64(1)), i, 0)
	bb.Br(head)
	bb.SetBlock(exit)
	bb.Ret(bb.Load(ir.I64, bb.Param(0), 0))
	for _, march := range []*isa.MicroArch{isa.A64FX(), isa.CortexA72()} {
		b.Run(march.Name+"/"+march.Features(), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cm, err := mcode.Lower(m, march)
				if err != nil {
					b.Fatal(err)
				}
				env := ir.NewSimpleEnv(1 << 14)
				ma, _ := mcode.NewMachine(cm, env, mcode.NewLinkage(cm), ir.ExecLimits{StackBase: 8192, StackSize: 4096})
				if _, err := ma.Run("main", 64, 1000); err != nil {
					b.Fatal(err)
				}
				cycles = mcode.Cycles(&ma.Counts, march)
			}
			b.ReportMetric(cycles, "vcycles")
		})
	}
}

// BenchmarkAblationOptLevel compares O0 vs O2 pipelines (design choice:
// JIT-time optimization). Frontend-generated code (minilang here) is
// where the optimizer earns its keep; the hand-built C-path kernels are
// already minimal.
func BenchmarkAblationOptLevel(b *testing.B) {
	const src = `
function poly(x::Int, y::Int)::Int
    a = x * 1 + 0
    b = a + y * 0
    c = 2 * 3 + 4
    if c == 10
        return 0
    end
    d = b + c
    return d + helperk(d)
end
function helperk(v::Int)::Int
    return v + v
end`
	mod, err := minilang.Compile("poly", src)
	if err != nil {
		b.Fatal(err)
	}
	for _, lvl := range []passes.Level{passes.O0, passes.O2} {
		b.Run(fmt.Sprintf("O%d", lvl), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				m := mod.Clone()
				if err := passes.Optimize(m, lvl); err != nil {
					b.Fatal(err)
				}
				n = m.NumInstrs()
			}
			b.ReportMetric(float64(n), "IR-instrs")
		})
	}
}

// --- Wall-clock microbenchmarks of the infrastructure. ------------------

func BenchmarkInfraBitcodeEncode(b *testing.B) {
	m := core.BuildChaser()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bitcode.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInfraBitcodeDecode(b *testing.B) {
	data, err := bitcode.Encode(core.BuildChaser())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bitcode.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInfraJITLower(b *testing.B) {
	m := core.BuildChaser()
	march := isa.XeonE5()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mcode.Lower(m, march); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInfraJITSessionCompile(b *testing.B) {
	march := isa.XeonE5()
	m := core.BuildChaser()
	raw, _ := bitcode.Encode(m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ld := linker.NewLoader()
		lib := linker.NewDynLib(core.LibTC)
		for _, s := range []string{core.SymNodeID, core.SymSendSelf, core.SymComplete} {
			lib.Funcs[s] = func([]uint64) (uint64, error) { return 0, nil }
		}
		ld.Preload(lib)
		next := uint64(64)
		s := jit.NewSession(march, ld, func(g ir.Global) uint64 {
			a := next
			next += uint64(g.Size)
			return a
		})
		if _, _, _, err := s.Compile(jit.CacheKey(raw), m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInfraVMExecution(b *testing.B) {
	// Steady-state VM throughput on the sum loop (default engine).
	cm, err := mcode.Lower(bench.LoopKernel(), isa.XeonE5())
	if err != nil {
		b.Fatal(err)
	}
	env := ir.NewSimpleEnv(1 << 14)
	ma, _ := mcode.NewMachine(cm, env, mcode.NewLinkage(cm), ir.ExecLimits{StackBase: 8192, StackSize: 4096})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma.Reset()
		if _, err := ma.Run("main", 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineInterpVsClosure compares the pluggable execution
// engines head to head on the TSI kernel (the per-message hot path) and
// a dispatch-bound loop, on a warm reused machine — the runtime's
// steady state after the per-registration machine reuse refactor. The
// closure engine is the default because of this benchmark; CHANGES.md
// records the measured baseline.
func BenchmarkEngineInterpVsClosure(b *testing.B) {
	for _, k := range bench.EngineCorpus() {
		for _, eng := range []mcode.Engine{mcode.InterpEngine{}, mcode.ClosureEngine{}, mcode.SuperblockEngine{}} {
			b.Run(k.Name+"/"+eng.Name(), func(b *testing.B) {
				cm, err := mcode.Lower(k.Mod, isa.XeonE5())
				if err != nil {
					b.Fatal(err)
				}
				env := ir.NewSimpleEnv(1 << 16)
				ma, err := mcode.NewMachineFor(eng, cm, env, mcode.NewLinkage(cm),
					ir.ExecLimits{StackBase: 32 << 10, StackSize: 16 << 10})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ma.Run(k.Entry, k.Args...); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ma.Reset()
					if _, err := ma.Run(k.Entry, k.Args...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineRunBatch measures the batched run stage against
// one-at-a-time execution on a warm machine: b=1 is the pre-batching
// delivery hot path (one Reset+Run per message), larger sizes are one
// Reset+RunBatch per delivery group — the per-group unit of the batched
// pipeline. The end-to-end pipeline win (poll, lookup and cost-charge
// amortization on top of this) is measured by bench.DeliverySweep and
// reported by `paperbench -json`.
func BenchmarkEngineRunBatch(b *testing.B) {
	k := bench.EngineCorpus()[0] // tsi
	for _, bs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%s/batch-%d", k.Name, bs), func(b *testing.B) {
			cm, err := mcode.Lower(k.Mod, isa.XeonE5())
			if err != nil {
				b.Fatal(err)
			}
			env := ir.NewSimpleEnv(1 << 16)
			ma, err := mcode.NewMachineFor(mcode.ClosureEngine{}, cm, env, mcode.NewLinkage(cm),
				ir.ExecLimits{StackBase: 32 << 10, StackSize: 16 << 10})
			if err != nil {
				b.Fatal(err)
			}
			argvs := make([][]uint64, bs)
			for i := range argvs {
				argvs[i] = k.Args
			}
			out := make([]mcode.BatchResult, bs)
			if err := ma.RunBatch(k.Entry, argvs, out); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ma.Reset()
				if bs == 1 {
					if _, err := ma.Run(k.Entry, k.Args...); err != nil {
						b.Fatal(err)
					}
					continue
				}
				if err := ma.RunBatch(k.Entry, argvs, out); err != nil {
					b.Fatal(err)
				}
			}
			// ns/op is per batch; scale mentally by batch size (each op
			// executes bs guest activations).
		})
	}
}

// BenchmarkSuperblockBatchSweep runs the superblock engine's RunBatch
// sweep on a reduced grid — the CI regression smoke for the superblock
// backend (one iteration exercises formation, native loops, the direct
// RMW runner and the batch trampoline end to end) and the quick local
// view of the sweep recorded in BENCH_engines.json.
func BenchmarkSuperblockBatchSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, k := range bench.EngineCorpus() {
			s, err := bench.SweepBatch(isa.XeonE5(), mcode.SuperblockEngine{}, k, []int{1, 8})
			if err != nil {
				b.Fatal(err)
			}
			last := s.Points[len(s.Points)-1]
			b.ReportMetric(last.Gain, k.Name+"-b8-gain")
		}
	}
}

func BenchmarkInfraEndToEndTSI(b *testing.B) {
	// Wall-clock cost of one fully simulated cached TSI message.
	p := testbed.ThorXeon()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTSI(p, bench.TSIBitcodeCached); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDAPCCaching measures the caching protocol at
// application scale: the same pointer chase with the code cache on vs
// off (every server-to-server forward re-ships the ~8 KiB chaser
// archive).
func BenchmarkAblationDAPCCaching(b *testing.B) {
	base := bench.DAPCConfig{
		Profile: testbed.ThorMixed(), ClientMarch: isa.XeonE5,
		Servers: 8, Depth: 512, Chases: 6, EntriesPerServer: 512,
	}
	for _, disabled := range []bool{false, true} {
		name := "cache-on"
		cfg := base
		if disabled {
			name = "cache-off"
			cfg.DisableCache = true
		}
		b.Run(name, func(b *testing.B) { dapcCell(b, cfg, bench.DAPCBitcode) })
	}
}
