package core

import (
	"bytes"
	"strings"
	"testing"

	"threechains/internal/obs"
	"threechains/internal/place"
)

// TestTracingDisabledAllocFree pins the zero-overhead-when-disabled
// contract: with no trace or metrics attached, the warm send/deliver
// path — which now carries every emission site (frame-form instants,
// fabric tx/rx, drain and execute spans) as nil-checked hooks — still
// allocates nothing per message.
func TestTracingDisabledAllocFree(t *testing.T) {
	c, src, dst, h, _ := warmSendWorld(t)
	if src.Trace != nil || dst.Trace != nil || src.Node.Trace != nil {
		t.Fatal("trace attached without AttachTrace")
	}
	payload := make([]byte, 8)
	for i := 0; i < 32; i++ {
		if err := src.SendQuiet(1, h, "main", payload); err != nil {
			t.Fatal(err)
		}
	}
	c.Run()
	msg := func() {
		if err := src.SendQuiet(1, h, "main", payload); err != nil {
			t.Fatal(err)
		}
		c.Run()
	}
	const budget = 0.5
	if allocs := testing.AllocsPerRun(300, msg); allocs > budget {
		t.Errorf("disabled-tracing warm delivery allocates %.2f objects/msg, budget %.1f", allocs, budget)
	}
}

// TestTracingDisabledOffloadAllocs pins the warm ship-routed offload
// with tracing and metrics unattached: the only per-op allocations are
// the pre-existing completion signal and its fire bookkeeping — the
// nil-checked plan instant and latency-histogram sites add nothing.
func TestTracingDisabledOffloadAllocs(t *testing.T) {
	c, src, _, h, _ := warmSendWorld(t)
	payload := make([]byte, 8)
	opts := OffloadOpts{Policy: place.PolicyShipCode}
	for i := 0; i < 16; i++ {
		if _, err := src.Offload(1, h, "main", payload, opts); err != nil {
			t.Fatal(err)
		}
		c.Run()
	}
	op := func() {
		if _, err := src.Offload(1, h, "main", payload, opts); err != nil {
			t.Fatal(err)
		}
		c.Run()
	}
	// The completion signal and its AtFire event are inherent to the
	// Offload API (Send's quiet path avoids them); pin their ceiling so
	// any hook regression that starts allocating shows up immediately.
	const budget = 4
	if allocs := testing.AllocsPerRun(200, op); allocs > budget {
		t.Errorf("disabled-tracing warm offload allocates %.2f objects/op, budget %d", allocs, budget)
	}
}

// TestAttachTraceRecordsDeliveryPipeline wires a trace and metrics into
// a two-node cluster and checks one warm delivery lands every pipeline
// stage in the right node's buffer: sender frame instant + tx span,
// receiver rx instant + drain and execute spans — and that the metrics
// registry reads the same counters the stats structs hold.
func TestAttachTraceRecordsDeliveryPipeline(t *testing.T) {
	c, src, dst, h, _ := warmSendWorld(t)
	tr := obs.NewTrace(len(c.Runtimes))
	reg := obs.NewRegistry()
	c.AttachTrace(tr)
	c.AttachMetrics(reg)
	if err := src.SendQuiet(1, h, "main", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	c.Run()

	canon := string(tr.Canonical())
	for _, want := range []string{
		"n0 core inst frame-trunc",
		"n0 nic-out span tx",
		"n1 nic-in inst rx",
		"n1 core span drain",
		"n1 core span execute",
	} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical trace missing %q:\n%s", want, canon)
		}
	}

	var gotSent, gotExec bool
	for _, pt := range reg.Snapshot() {
		if pt.Node == 0 && pt.Name == "runtime.ifuncs_sent" {
			gotSent = true
			if pt.Value != src.Stats.IfuncsSent {
				t.Errorf("ifuncs_sent metric %d != stat %d", pt.Value, src.Stats.IfuncsSent)
			}
		}
		if pt.Node == 1 && pt.Name == "runtime.executions" {
			gotExec = true
			if pt.Value != dst.Stats.Executions {
				t.Errorf("executions metric %d != stat %d", pt.Value, dst.Stats.Executions)
			}
		}
	}
	if !gotSent || !gotExec {
		t.Fatal("metrics snapshot missing registered counters")
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"X"`) {
		t.Error("chrome export has no complete events")
	}
}

// TestOffloadRouteLatencyHistograms checks AttachMetrics' per-route
// histograms observe plan-to-completion latency for each launched
// route.
func TestOffloadRouteLatencyHistograms(t *testing.T) {
	c, src, dst, h, _ := warmSendWorld(t)
	reg := obs.NewRegistry()
	c.AttachMetrics(reg)
	dst.TargetPtr = dst.Node.Alloc(64)
	if _, err := src.Offload(1, h, "main", make([]byte, 8), OffloadOpts{Policy: place.PolicyShipCode}); err != nil {
		t.Fatal(err)
	}
	c.Run()
	var shipCount uint64
	for _, pt := range reg.Snapshot() {
		if pt.Node == 0 && pt.Name == "offload.latency_ps.ship" {
			shipCount = pt.Count
			if pt.Count > 0 && pt.P99 == 0 {
				t.Error("ship latency histogram has observations but zero p99")
			}
		}
	}
	if shipCount != 1 {
		t.Fatalf("ship latency count = %d, want 1", shipCount)
	}
}
