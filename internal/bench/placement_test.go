package bench

// Differential and acceptance tests for the placement planner at the
// cluster level: every policy produces bit-identical execution results,
// cost-model decisions are deterministic across runs and execution
// engines (virtual-time invariance extended to routed offloads), and on
// the mixed heterogeneous scenario the planner beats both static
// policies.

import (
	"fmt"
	"testing"

	"threechains/internal/place"
	"threechains/internal/testbed"
)

// acceptanceScenario is the mixed-hetero workload of the default grid.
func acceptanceScenario() place.WorkloadParams {
	return PlacementScenarios()[0].Params
}

// TestPlacementPoliciesBitIdentical runs every scenario of the default
// grid under all three policies: identical result hashes are asserted
// inside PlacementSweep (it errors on divergence), so this test is the
// check that the whole grid actually completes and stays comparable.
func TestPlacementPoliciesBitIdentical(t *testing.T) {
	rows, err := PlacementSweep(testbed.ThorXeon(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	for _, r := range rows {
		for _, pt := range r.Points[1:] {
			if pt.ResultHash != r.Points[0].ResultHash {
				t.Errorf("%s: %s hash %s != %s hash %s", r.Scenario,
					pt.Policy, pt.ResultHash, r.Points[0].Policy, r.Points[0].ResultHash)
			}
		}
	}
}

// TestPlacementCostModelWins pins the acceptance criterion: on the
// mixed-hetero scenario (mixed payload/region sizes, asymmetric node
// speeds) the cost model achieves lower total virtual time than both
// static policies, with a genuinely mixed route choice.
func TestPlacementCostModelWins(t *testing.T) {
	p := testbed.ThorXeon()
	sc := PlacementScenarios()[:1]
	rows, err := PlacementSweep(p, sc)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	ship, pull, cost := r.Points[0].TotalUS, r.Points[1].TotalUS, r.Points[2].TotalUS
	if cost >= ship || cost >= pull {
		t.Fatalf("cost model %0.1fus does not beat ship %0.1fus and pull %0.1fus", cost, ship, pull)
	}
	cm := r.Points[2]
	if cm.ShipOps == 0 || cm.PullOps == 0 {
		t.Errorf("degenerate route mix: ship=%d pull=%d local=%d (a static policy in disguise)",
			cm.ShipOps, cm.PullOps, cm.LocalOps)
	}
	t.Logf("mixed-hetero: ship=%.0fus pull=%.0fus cost=%.0fus win=%.1f%% (routes s=%d p=%d l=%d)",
		ship, pull, cost, r.WinPct, cm.ShipOps, cm.PullOps, cm.LocalOps)
}

// TestPlacementDeterministicAcrossRunsAndEngines runs the cost-model
// policy on the acceptance scenario twice on the default engine and once
// per alternative engine: total virtual time, route mix and result hash
// must be identical everywhere — decisions consume only engine-invariant
// virtual-time state, so engine choice (host wall-clock) can never leak
// into placement.
func TestPlacementDeterministicAcrossRunsAndEngines(t *testing.T) {
	params := acceptanceScenario()
	type run struct {
		label string
		prof  testbed.Profile
	}
	base := testbed.ThorXeon()
	interp := testbed.ThorXeon()
	interp.Engine = "interp"
	closure := testbed.ThorXeon()
	closure.Engine = "closure"
	runs := []run{
		{"superblock-1", base},
		{"superblock-2", base},
		{"interp", interp},
		{"closure", closure},
	}
	total0, stats0, hash0, err := RunPlacementScenario(runs[0].prof, params, place.PolicyCostModel)
	if err != nil {
		t.Fatal(err)
	}
	for _, rn := range runs[1:] {
		total, stats, hash, err := RunPlacementScenario(rn.prof, params, place.PolicyCostModel)
		if err != nil {
			t.Fatalf("%s: %v", rn.label, err)
		}
		if total != total0 {
			t.Errorf("%s: total virtual time %v != %v", rn.label, total, total0)
		}
		if stats != stats0 {
			t.Errorf("%s: route stats %+v != %+v", rn.label, stats, stats0)
		}
		if hash != hash0 {
			t.Errorf("%s: result hash %016x != %016x", rn.label, hash, hash0)
		}
	}
}

// TestPlacementSweepSanity checks the sweep rows carry coherent derived
// fields (fingerprint present, best-static/win arithmetic).
func TestPlacementSweepSanity(t *testing.T) {
	rows, err := PlacementSweep(testbed.ThorXeon(), PlacementScenarios()[:1])
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Fingerprint == "" || len(r.Points) != 3 {
		t.Fatalf("row shape: %+v", r)
	}
	want := r.Points[0].TotalUS
	if r.Points[1].TotalUS < want {
		want = r.Points[1].TotalUS
	}
	if r.BestStaticUS != want {
		t.Errorf("best static %v, want %v", r.BestStaticUS, want)
	}
}

// TestConcurrentPlacementBitIdentical: W-deep offload streams produce
// bit-identical memory and per-op results across all four policies —
// including the queueing-aware planner — and match the sequential
// runner's hash for the same workload (per-destination serialization
// makes every op's value independent of route, depth and mode).
func TestConcurrentPlacementBitIdentical(t *testing.T) {
	p := testbed.ThorXeon()
	rows, err := ConcurrentPlacementSweep(p, nil)
	if err != nil {
		t.Fatal(err) // the sweep itself asserts cross-policy equality
	}
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	for _, r := range rows {
		if len(r.Points) != 4 {
			t.Fatalf("%s: %d points, want 4", r.Scenario, len(r.Points))
		}
		for _, pt := range r.Points[1:] {
			if pt.ResultHash != r.Points[0].ResultHash {
				t.Errorf("%s: %s hash %s != %s hash %s", r.Scenario,
					pt.Policy, pt.ResultHash, r.Points[0].Policy, r.Points[0].ResultHash)
			}
		}
	}
	// Cross-mode: the same workload driven sequentially hashes the same.
	sc := ConcurrentPlacementScenarios()[0]
	_, _, seqHash, err := RunPlacementScenario(p, sc.Params, place.PolicyShipCode)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%016x", seqHash)
	if rows[0].Points[0].ResultHash != want {
		t.Errorf("concurrent hash %s != sequential hash %s", rows[0].Points[0].ResultHash, want)
	}
}

// TestConcurrentQueueModelWins pins the acceptance criterion: on the
// concurrent mixed-hetero scenario (stream depth 16) the queueing-aware
// cost model beats both static policies AND the zero-load cost model on
// makespan, with a genuinely mixed route choice.
func TestConcurrentQueueModelWins(t *testing.T) {
	sc := ConcurrentPlacementScenarios()[:1]
	rows, err := ConcurrentPlacementSweep(testbed.ThorXeon(), sc)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	ship, pull := r.Points[0].TotalUS, r.Points[1].TotalUS
	zero, queue := r.Points[2].TotalUS, r.Points[3].TotalUS
	if queue >= ship || queue >= pull || queue >= zero {
		t.Fatalf("queue model %0.1fus does not beat ship %0.1fus, pull %0.1fus and zero-load %0.1fus",
			queue, ship, pull, zero)
	}
	q := r.Points[3]
	if q.ShipOps == 0 || q.PullOps == 0 {
		t.Errorf("degenerate route mix: ship=%d pull=%d local=%d (a static policy in disguise)",
			q.ShipOps, q.PullOps, q.LocalOps)
	}
	t.Logf("%s depth=%d: ship=%.0fus pull=%.0fus zero-load=%.0fus queue=%.0fus win=%.1f%% (routes s=%d p=%d l=%d)",
		r.Scenario, r.Depth, ship, pull, zero, queue, r.QueueWinPct, q.ShipOps, q.PullOps, q.LocalOps)
}

// TestConcurrentPlacementDeterministicAcrossRunsAndEngines runs the
// queueing-aware policy on the concurrent acceptance scenario twice on
// the default engine and once per alternative engine: makespan, route
// stats, result hash and the planner's full committed decision trace
// (routes, estimates, horizon claims) must be identical everywhere.
func TestConcurrentPlacementDeterministicAcrossRunsAndEngines(t *testing.T) {
	params := ConcurrentPlacementScenarios()[0].Params
	base := testbed.ThorXeon()
	interp := testbed.ThorXeon()
	interp.Engine = "interp"
	closure := testbed.ThorXeon()
	closure.Engine = "closure"
	runs := []struct {
		label string
		prof  testbed.Profile
	}{
		{"superblock-1", base},
		{"superblock-2", base},
		{"interp", interp},
		{"closure", closure},
	}
	total0, stats0, hash0, trace0, err := RunConcurrentPlacementScenario(runs[0].prof, params, place.PolicyCostModelQueue)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace0) != params.Ops {
		t.Fatalf("trace length %d, want %d", len(trace0), params.Ops)
	}
	for _, rn := range runs[1:] {
		total, stats, hash, trace, err := RunConcurrentPlacementScenario(rn.prof, params, place.PolicyCostModelQueue)
		if err != nil {
			t.Fatalf("%s: %v", rn.label, err)
		}
		if total != total0 {
			t.Errorf("%s: makespan %v != %v", rn.label, total, total0)
		}
		if stats != stats0 {
			t.Errorf("%s: route stats %+v != %+v", rn.label, stats, stats0)
		}
		if hash != hash0 {
			t.Errorf("%s: result hash %016x != %016x", rn.label, hash, hash0)
		}
		if len(trace) != len(trace0) {
			t.Fatalf("%s: trace length %d != %d", rn.label, len(trace), len(trace0))
		}
		for i := range trace {
			if trace[i] != trace0[i] {
				t.Errorf("%s: decision %d differs: %+v vs %+v", rn.label, i, trace[i], trace0[i])
				break
			}
		}
	}
}

// BenchmarkPlacementPolicies drives a small generated scenario under all
// three routing policies per iteration — the CI -benchtime=1x smoke for
// the placement subsystem (crashes, divergence and policy errors surface
// without timing noise; virtual-time outcomes are tracked in
// BENCH_engines.json, not asserted here).
func BenchmarkPlacementPolicies(b *testing.B) {
	p := testbed.ThorXeon()
	params := place.WorkloadParams{Seed: 46, Nodes: 3, Types: 4, Ops: 16}
	for i := 0; i < b.N; i++ {
		var hashes []uint64
		for _, pol := range []place.Policy{place.PolicyShipCode, place.PolicyPullData, place.PolicyCostModel} {
			_, _, hash, err := RunPlacementScenario(p, params, pol)
			if err != nil {
				b.Fatal(err)
			}
			hashes = append(hashes, hash)
		}
		if hashes[0] != hashes[1] || hashes[1] != hashes[2] {
			b.Fatalf("policies diverged: %x", hashes)
		}
	}
}

// BenchmarkConcurrentPlacement drives a reduced concurrent scenario
// under all four routing policies per iteration — the CI -benchtime=1x
// smoke for the windowed-stream path and the queueing-aware planner
// (crashes, stream stalls and cross-policy divergence surface without
// timing noise).
func BenchmarkConcurrentPlacement(b *testing.B) {
	p := testbed.ThorXeon()
	params := ConcurrentPlacementScenarios()[0].Params
	params.Ops = 48
	for i := 0; i < b.N; i++ {
		var hashes []uint64
		for _, pol := range concurrentPolicies {
			_, _, hash, _, err := RunConcurrentPlacementScenario(p, params, pol)
			if err != nil {
				b.Fatal(err)
			}
			hashes = append(hashes, hash)
		}
		for _, h := range hashes[1:] {
			if h != hashes[0] {
				b.Fatalf("policies diverged: %x", hashes)
			}
		}
	}
}
