package mcode_test

// Differential tests specific to the superblock engine: randomized
// program fuzzing against the interpreter oracle across the three paper
// µarchs, MaxSteps limits swept so aborts land at every offset —
// including mid-superblock and mid-native-loop — and pinned assertions
// that superblock formation actually happens on the shapes it targets
// (loop merging, native self-loops, the RMW direct runner).

import (
	"fmt"
	"math/rand"
	"testing"

	"threechains/internal/bench"
	"threechains/internal/core"
	"threechains/internal/ir"
	"threechains/internal/isa"
	"threechains/internal/mcode"
)

// fuzzMarchs is the µarch grid of the fuzz suite.
func fuzzMarchs() []*isa.MicroArch {
	return []*isa.MicroArch{isa.XeonE5(), isa.A64FX(), isa.CortexA72()}
}

// randModule generates a random — but always verifying and terminating —
// guest program: stack slots seeded from parameters, a bounded
// memory-carried counting loop whose body mixes straight-line arithmetic,
// slot loads/stores and an optional branch diamond, and a return value
// folded from the live pool. Faulting programs (division by a parameter
// that may be zero, occasional wild addresses) are generated on purpose:
// the differential runner compares errors too.
func randModule(r *rand.Rand, id int) *ir.Module {
	m := ir.NewModule(fmt.Sprintf("fuzz%03d", id))
	b := ir.NewBuilder(m)
	b.NewFunc("main", []ir.Type{ir.I64, ir.I64}, ir.I64)

	// Entry: slots and a seed pool (params, constants, entry arithmetic).
	nslots := 1 + r.Intn(3)
	slots := make([]ir.Reg, nslots)
	for i := range slots {
		slots[i] = b.Alloca(8)
	}
	pool := []ir.Reg{b.Param(0), b.Param(1), b.Const64(int64(r.Intn(64))), b.Const64(1)}
	pick := func() ir.Reg { return pool[r.Intn(len(pool))] }
	binOps := []func(x, y ir.Reg) ir.Reg{b.Add, b.Sub, b.Mul, b.And, b.Or, b.Xor}
	emitOp := func() {
		switch r.Intn(8) {
		case 6:
			// Division: may fault on a zero operand, by design.
			pool = append(pool, b.UDiv(pick(), pick()))
		case 7:
			preds := []ir.Pred{ir.PredEQ, ir.PredNE, ir.PredSLT, ir.PredULT, ir.PredSGE}
			pool = append(pool, b.ICmp(preds[r.Intn(len(preds))], pick(), pick()))
		default:
			pool = append(pool, binOps[r.Intn(len(binOps))](pick(), pick()))
		}
	}
	for i := 0; i < 2+r.Intn(4); i++ {
		emitOp()
	}
	for i, s := range slots {
		if i == 0 {
			b.Store(ir.I64, b.Const64(0), s, 0) // loop counter
		} else {
			b.Store(ir.I64, pick(), s, 0)
		}
	}
	if r.Intn(4) == 0 {
		// Rarely store through a huge address: both engines must fault
		// identically.
		b.Store(ir.I64, pick(), b.Const64(1<<40), 0)
	}

	bound := b.Const64(int64(3 + r.Intn(24)))
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(head)

	// head: while *counter < bound
	b.SetBlock(head)
	iv := b.Load(ir.I64, slots[0], 0)
	b.CondBr(b.ICmp(ir.PredSLT, iv, bound), body, exit)

	// body: straight-line work over slots, optionally a branch diamond,
	// then the counted back edge.
	b.SetBlock(body)
	bodyPool := append([]ir.Reg(nil), pool...)
	bpick := func() ir.Reg { return bodyPool[r.Intn(len(bodyPool))] }
	for i := 0; i < 1+r.Intn(3); i++ {
		s := slots[r.Intn(nslots)]
		v := b.Load(ir.I64, s, 0)
		bodyPool = append(bodyPool, v)
		nv := binOps[r.Intn(len(binOps))](v, bpick())
		bodyPool = append(bodyPool, nv)
		if s != slots[0] {
			b.Store(ir.I64, nv, s, 0)
		}
	}
	if r.Intn(2) == 0 {
		then := b.NewBlock("then")
		join := b.NewBlock("join")
		b.CondBr(b.ICmp(ir.PredULT, bpick(), bpick()), then, join)
		b.SetBlock(then)
		if nslots > 1 {
			b.Store(ir.I64, bpick(), slots[1], 0)
		}
		b.Br(join)
		b.SetBlock(join)
	}
	b.Store(ir.I64, b.Add(b.Load(ir.I64, slots[0], 0), b.Const64(1)), slots[0], 0)
	b.Br(head)

	// exit: fold a return value from memory and the entry pool.
	b.SetBlock(exit)
	acc := b.Load(ir.I64, slots[nslots-1], 0)
	b.Ret(b.Xor(acc, pick()))
	return m
}

// fuzzObserve runs one (engine, module, limit) cell and returns every
// observable the differential compares.
func fuzzObserve(t *testing.T, eng mcode.Engine, cm *mcode.CompiledModule, args []uint64, limit int64) (ir.ExecResult, [isa.NumOps]uint64, []byte, error) {
	t.Helper()
	env := ir.NewSimpleEnv(1 << 14)
	ma, err := mcode.NewMachineFor(eng, cm, env, mcode.NewLinkage(cm), ir.ExecLimits{
		MaxSteps: limit, StackBase: 8 << 10, StackSize: 4 << 10,
	})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	res, runErr := ma.Run("main", args...)
	return res, ma.Counts, env.Memory, runErr
}

// TestSuperblockFuzzDifferential holds the superblock (and, as a
// cross-check, the closure) engine to the interpreter oracle on a corpus
// of random programs, across the three paper µarchs, each at the
// unlimited budget plus tight budgets chosen from the program's own step
// count so aborts land inside merged regions.
func TestSuperblockFuzzDifferential(t *testing.T) {
	const programs = 40
	r := rand.New(rand.NewSource(0x5eedb10c))
	argSets := [][]uint64{{7, 3}, {0, 0}, {1 << 33, 5}}
	for id := 0; id < programs; id++ {
		mod := randModule(r, id)
		args := argSets[id%len(argSets)]
		for _, march := range fuzzMarchs() {
			cm, err := mcode.Lower(mod, march)
			if err != nil {
				t.Fatalf("%s: lower: %v", mod.Name, err)
			}
			ref, refCounts, refMem, refErr := fuzzObserve(t, mcode.InterpEngine{}, cm, args, 0)
			limits := []int64{0, ref.Steps - 1, ref.Steps / 2, ref.Steps/3 + 1, 7}
			for _, limit := range limits {
				if limit < 0 || limit > ref.Steps {
					continue
				}
				want, wantCounts, wantMem, wantErr := ref, refCounts, refMem, refErr
				if limit != 0 {
					want, wantCounts, wantMem, wantErr = fuzzObserve(t, mcode.InterpEngine{}, cm, args, limit)
				}
				for _, ec := range []struct {
					label string
					eng   mcode.Engine
				}{{"superblock", mcode.SuperblockEngine{}}, {"closure", mcode.ClosureEngine{}}} {
					got, gotCounts, gotMem, gotErr := fuzzObserve(t, ec.eng, cm, args, limit)
					name := fmt.Sprintf("%s/%s/%s/limit=%d", mod.Name, march.Name, ec.label, limit)
					if (wantErr == nil) != (gotErr == nil) ||
						(wantErr != nil && wantErr.Error() != gotErr.Error()) {
						t.Fatalf("%s: error mismatch: interp=%v got=%v", name, wantErr, gotErr)
					}
					if got.Value != want.Value {
						t.Fatalf("%s: value %#x, interp %#x", name, got.Value, want.Value)
					}
					if got.Steps != want.Steps {
						t.Fatalf("%s: steps %d, interp %d", name, got.Steps, want.Steps)
					}
					if gotCounts != wantCounts {
						t.Fatalf("%s: op counts diverge:\n got:    %v\n interp: %v", name, gotCounts, wantCounts)
					}
					if string(gotMem) != string(wantMem) {
						t.Fatalf("%s: final memory images diverge", name)
					}
				}
			}
		}
	}
}

// TestSuperblockFuzzBatch pins batch ≡ sequential for the superblock
// engine on a slice of the fuzz corpus: RunBatch over n identical
// elements must reproduce n independent Reset+Run executions element for
// element, with batch-cumulative counts.
func TestSuperblockFuzzBatch(t *testing.T) {
	const batchN = 3
	r := rand.New(rand.NewSource(0xba7c4))
	for id := 0; id < 10; id++ {
		mod := randModule(r, 100+id)
		cm, err := mcode.Lower(mod, isa.XeonE5())
		if err != nil {
			t.Fatal(err)
		}
		args := []uint64{9, 2}

		seqEnv := ir.NewSimpleEnv(1 << 14)
		seqMa, err := mcode.NewMachineFor(mcode.SuperblockEngine{}, cm, seqEnv, mcode.NewLinkage(cm), ir.ExecLimits{
			StackBase: 8 << 10, StackSize: 4 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		var seq []mcode.BatchResult
		var seqCounts [isa.NumOps]uint64
		for i := 0; i < batchN; i++ {
			seqMa.Reset()
			res, runErr := seqMa.Run("main", args...)
			seq = append(seq, mcode.BatchResult{Value: res.Value, Steps: res.Steps, Err: runErr})
			for op := range seqCounts {
				seqCounts[op] += seqMa.Counts[op]
			}
		}

		env := ir.NewSimpleEnv(1 << 14)
		ma, err := mcode.NewMachineFor(mcode.SuperblockEngine{}, cm, env, mcode.NewLinkage(cm), ir.ExecLimits{
			StackBase: 8 << 10, StackSize: 4 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		argvs := make([][]uint64, batchN)
		for i := range argvs {
			argvs[i] = args
		}
		out := make([]mcode.BatchResult, batchN)
		if err := ma.RunBatch("main", argvs, out); err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if (seq[i].Err == nil) != (out[i].Err == nil) ||
				(seq[i].Err != nil && seq[i].Err.Error() != out[i].Err.Error()) {
				t.Fatalf("%s elem %d: err batch=%v seq=%v", mod.Name, i, out[i].Err, seq[i].Err)
			}
			if out[i].Value != seq[i].Value || out[i].Steps != seq[i].Steps {
				t.Fatalf("%s elem %d: batch (%#x,%d) vs seq (%#x,%d)",
					mod.Name, i, out[i].Value, out[i].Steps, seq[i].Value, seq[i].Steps)
			}
		}
		if ma.Counts != seqCounts {
			t.Fatalf("%s: cumulative counts diverge", mod.Name)
		}
		if string(env.Memory) != string(seqEnv.Memory) {
			t.Fatalf("%s: memory diverges", mod.Name)
		}
	}
}

// TestSuperblockMidLoopAbortSweep pins the exact-abort contract on the
// memory-carried counting loop (the engine-benchmark kernel): every
// MaxSteps limit from 1 to well past several loop traversals must
// reproduce the interpreter's value/steps/counts/error/memory bit for
// bit — these limits land at every offset inside the merged body+head
// superblock and inside the native self-loop.
func TestSuperblockMidLoopAbortSweep(t *testing.T) {
	mod := bench.LoopKernel()
	for _, march := range fuzzMarchs() {
		cm, err := mcode.Lower(mod, march)
		if err != nil {
			t.Fatal(err)
		}
		args := []uint64{25}
		full, _, _, err := fuzzObserve(t, mcode.InterpEngine{}, cm, args, 0)
		if err != nil {
			t.Fatal(err)
		}
		for limit := int64(1); limit <= full.Steps; limit++ {
			want, wantCounts, wantMem, wantErr := fuzzObserve(t, mcode.InterpEngine{}, cm, args, limit)
			got, gotCounts, gotMem, gotErr := fuzzObserve(t, mcode.SuperblockEngine{}, cm, args, limit)
			if (wantErr == nil) != (gotErr == nil) ||
				(wantErr != nil && wantErr.Error() != gotErr.Error()) {
				t.Fatalf("%s limit %d: error mismatch interp=%v superblock=%v", march.Name, limit, wantErr, gotErr)
			}
			if got.Value != want.Value || got.Steps != want.Steps {
				t.Fatalf("%s limit %d: (%#x,%d) vs interp (%#x,%d)",
					march.Name, limit, got.Value, got.Steps, want.Value, want.Steps)
			}
			if gotCounts != wantCounts {
				t.Fatalf("%s limit %d: op counts diverge\n sb:     %v\n interp: %v",
					march.Name, limit, gotCounts, wantCounts)
			}
			if string(gotMem) != string(wantMem) {
				t.Fatalf("%s limit %d: memory diverges", march.Name, limit)
			}
		}
	}
}

// TestSuperblockFormation asserts the former actually merges on the
// shapes the engine targets: the loop kernel must produce at least one
// multi-segment region and one native self-loop, and the TSI kernel must
// compile to the single-block fast path while still running correctly.
func TestSuperblockFormation(t *testing.T) {
	loopCM, err := mcode.Lower(bench.LoopKernel(), isa.XeonE5())
	if err != nil {
		t.Fatal(err)
	}
	art, err := mcode.SuperblockEngine{}.Prepare(loopCM)
	if err != nil {
		t.Fatal(err)
	}
	merged, loops, ok := mcode.SuperblockStats(art)
	if !ok {
		t.Fatal("SuperblockStats not ok for a superblock artifact")
	}
	if merged == 0 || loops == 0 {
		t.Fatalf("loop kernel formed merged=%d loops=%d, want both > 0", merged, loops)
	}
	if _, _, ok := mcode.SuperblockStats(mustPrepare(t, mcode.ClosureEngine{}, loopCM)); ok {
		t.Fatal("SuperblockStats should reject closure artifacts")
	}

	// TSI: the direct-runner shape must still satisfy the interpreter
	// differential (covered above), and its stats must be reachable.
	tsiCM, err := mcode.Lower(core.BuildTSI(), isa.XeonE5())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := mcode.SuperblockStats(mustPrepare(t, mcode.SuperblockEngine{}, tsiCM)); !ok {
		t.Fatal("SuperblockStats not ok for TSI superblock artifact")
	}
}

func mustPrepare(t *testing.T, eng mcode.Engine, cm *mcode.CompiledModule) mcode.Artifact {
	t.Helper()
	art, err := eng.Prepare(cm)
	if err != nil {
		t.Fatal(err)
	}
	return art
}
