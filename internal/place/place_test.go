package place

import (
	"testing"

	"threechains/internal/sim"
	"threechains/internal/testbed"
)

// model builds a Thor-flavoured cost model: a fast Xeon host (local)
// against a remote node scaled by mult (1 = symmetric, >1 = wimpy DPU).
func model(mult float64) CostModel {
	p := testbed.ThorXeon()
	return CostModel{
		Net:    p.Net,
		Local:  NodeTraits{March: p.March(), ExecMult: 1, IfuncPoll: p.IfuncPoll},
		Remote: NodeTraits{March: p.March(), ExecMult: mult, IfuncPoll: p.IfuncPoll},
	}
}

// req is a baseline remote request: warm caches both sides, cheap kernel,
// small region.
func req() Request {
	return Request{
		PayloadLen: 8, DataBytes: 64, WriteBack: true,
		FrameBytes: 33, RemoteRegistered: true, LocalRegistered: true,
		MeanSteps: 8, PullViable: true,
	}
}

// TestCostModelRanking checks the model ranks routes the way the
// simulation's own charges do on the extremes the planner must get right.
func TestCostModelRanking(t *testing.T) {
	// Heavy kernel against an 8x-slower remote node, small region: the
	// remote execution dominates — pull must win.
	r := req()
	r.MeanSteps = 20000
	m := model(8)
	if ship, pull := m.ShipCost(r), m.PullCost(r); pull >= ship {
		t.Errorf("heavy/slow-remote/small-region: pull %v !< ship %v", pull, ship)
	}

	// Cheap cached kernel, large region, symmetric nodes: the region
	// transfer dominates — ship (26-byte truncated frame) must win.
	r = req()
	r.DataBytes = 16 << 10
	m = model(1)
	if ship, pull := m.ShipCost(r), m.PullCost(r); ship >= pull {
		t.Errorf("cheap/large-region: ship %v !< pull %v", ship, pull)
	}

	// Uncached module: ship pays the full frame + remote JIT; pull with a
	// warm local registration skips both — pull must win even with a
	// moderate region.
	r = req()
	r.RemoteRegistered = false
	r.FrameBytes = 5200
	r.RemoteRegCost = 800 * sim.Microsecond
	r.DataBytes = 1024
	if ship, pull := m.ShipCost(r), m.PullCost(r); pull >= ship {
		t.Errorf("uncached-remote: pull %v !< ship %v", pull, ship)
	}

	// Write-back costs the pull route a PUT: a read-only request must
	// price strictly cheaper than the same request with write-back.
	r = req()
	r.DataBytes = 4096
	wb := m.PullCost(r)
	r.WriteBack = false
	if ro := m.PullCost(r); ro >= wb {
		t.Errorf("read-only pull %v !< write-back pull %v", ro, wb)
	}
}

// TestPlannerPolicies pins the forced policies and the fallback.
func TestPlannerPolicies(t *testing.T) {
	m := model(1)

	p := &Planner{Policy: PolicyShipCode}
	d, err := p.Decide(m, req())
	if err != nil || d.Route != RouteShipCode {
		t.Fatalf("ship policy: %v route %v", err, d.Route)
	}

	p = &Planner{Policy: PolicyPullData}
	if d, _ = p.Decide(m, req()); d.Route != RoutePullData {
		t.Fatalf("pull policy routed %v", d.Route)
	}
	r := req()
	r.PullViable = false
	if d, _ = p.Decide(m, r); d.Route != RouteShipCode {
		t.Fatalf("non-viable pull routed %v, want ship fallback", d.Route)
	}
	if p.Stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", p.Stats.Fallbacks)
	}

	// Local data degenerates every policy to run-local.
	for _, pol := range []Policy{PolicyCostModel, PolicyShipCode, PolicyPullData, PolicyLocal} {
		p = &Planner{Policy: pol}
		r = req()
		r.DstIsLocal = true
		if d, err = p.Decide(m, r); err != nil || d.Route != RouteLocal {
			t.Fatalf("%v with local data: %v route %v", pol, err, d.Route)
		}
	}

	// PolicyLocal rejects remote regions.
	p = &Planner{Policy: PolicyLocal}
	if _, err = p.Decide(m, req()); err == nil {
		t.Fatal("PolicyLocal accepted a remote region")
	}
}

// TestPlannerDeterminism: identical request streams yield identical
// decision traces — the property the runtime-level differential tests
// extend across engines.
func TestPlannerDeterminism(t *testing.T) {
	m := model(4)
	mk := func() []Decision {
		p := &Planner{Policy: PolicyCostModel, TraceEnabled: true}
		w := Generate(WorkloadParams{Seed: 11, Ops: 40})
		for _, op := range w.Ops {
			r := req()
			r.DstIsLocal = op.Dst == 0
			r.PayloadLen = op.PayloadLen
			r.DataBytes = w.RegionWords[op.Dst] * 8
			r.MeanSteps = float64(10 + w.Types[op.Type].Iters*3)
			if _, err := p.Decide(m, r); err != nil {
				t.Fatal(err)
			}
		}
		return p.Trace
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
