// Package bench is the evaluation harness: it reconstructs every table
// and figure of the paper's §V on the simulated testbeds.
//
//   - Tables I–III: TSI overhead breakdowns (lookup+exec, JIT,
//     transmission) per platform.
//   - Tables IV–VI: TSI latencies and message rates with speedups.
//   - Figures 5–8: DAPC pointer-chase rate vs depth.
//   - Figures 9–12: DAPC pointer-chase rate vs server count at depth 4096.
//
// The harness also carries the ablation studies DESIGN.md calls out
// (caching off, fat vs thin archives, pure vs GOT binaries, O0 vs O2).
package bench

import (
	"fmt"

	"threechains/internal/core"
	"threechains/internal/ifunc"
	"threechains/internal/ir"
	"threechains/internal/isa"
	"threechains/internal/jit"
	"threechains/internal/mcode"
	"threechains/internal/sim"
	"threechains/internal/testbed"
	"threechains/internal/toolchain"
	"threechains/internal/ucx"
)

// TSIMode selects the code-movement mode of the TSI microbenchmark.
type TSIMode int

// TSI modes (§IV-A: "Active Message, ifunc with binary code
// representation, and ifunc with bitcode code representation", each with
// caching on or defeated).
const (
	TSIActiveMessage TSIMode = iota
	TSIBitcodeCached
	TSIBitcodeUncached
	TSIBinaryCached
	TSIBinaryUncached
)

// String names the mode as the paper's tables do.
func (m TSIMode) String() string {
	switch m {
	case TSIActiveMessage:
		return "Active Message"
	case TSIBitcodeCached:
		return "Cached Bitcode"
	case TSIBitcodeUncached:
		return "Uncached Bitcode"
	case TSIBinaryCached:
		return "Cached Binary"
	case TSIBinaryUncached:
		return "Uncached Binary"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// TSIResult is one row of Tables I–VI.
type TSIResult struct {
	Platform string
	Mode     TSIMode
	// MsgBytes is the wire size of one message.
	MsgBytes int
	// LatencyUS is the one-way latency from send post to remote execution
	// completion, in microseconds.
	LatencyUS float64
	// TransUS is LatencyUS minus the lookup+execution component — the
	// paper's "Transmission" row.
	TransUS float64
	// LookupExecUS is the lookup + execution component.
	LookupExecUS float64
	// JITms is the one-time JIT compilation cost (bitcode modes; binary
	// modes report the load+GOT-patch cost; AM reports zero).
	JITms float64
	// RateMsgSec is the pipelined message rate.
	RateMsgSec float64
}

// tsiLatencyMsgs and tsiRateMsgs size the measurement loops. The
// simulation is deterministic, so modest counts give exact numbers.
const (
	tsiLatencyMsgs = 16
	tsiRateMsgs    = 512
)

// tsiWorld is one prepared TSI experiment.
type tsiWorld struct {
	cluster *core.Cluster
	src     *core.Runtime
	dst     *core.Runtime
	handle  *core.Handle
	mode    TSIMode
	amEP    *ucx.Endpoint
	counter uint64
	module  *ir.Module
}

// newTSIWorld builds a two-node cluster on the profile and prepares the
// selected mode (registration, predeployment, cache warm-up).
func newTSIWorld(p testbed.Profile, mode TSIMode) (*tsiWorld, error) {
	march := p.March()
	cl := core.NewCluster(p.Net, []core.NodeSpec{
		{Name: p.Name + "-src", March: p.March(), Engine: p.Engine},
		{Name: p.Name + "-dst", March: march, Engine: p.Engine},
	})
	w := &tsiWorld{cluster: cl, src: cl.Runtime(0), dst: cl.Runtime(1), mode: mode}
	for _, rt := range cl.Runtimes {
		rt.Worker.AMDispatch = p.AMDispatch
		rt.Worker.IfuncPoll = p.IfuncPoll
		// Paper fidelity: the §V runtime handles one message per poll, so
		// the calibrated tables are reproduced with batching pinned off.
		// The batched pipeline's gain is measured separately (BatchSweep).
		rt.Worker.MaxDrain = 1
	}
	w.counter = w.dst.Node.Alloc(8)
	w.dst.TargetPtr = w.counter
	w.module = core.BuildTSI()

	switch mode {
	case TSIActiveMessage:
		if err := w.dst.PredeployAM(1, "tsi", w.module); err != nil {
			return nil, err
		}
		w.amEP = w.src.Worker.Connect(w.dst.Worker)
	case TSIBitcodeCached, TSIBitcodeUncached:
		_, raw, err := toolchain.BuildArchive(w.module, toolchain.Options{
			Opt: 2, Debug: true, Triples: p.Triples,
		})
		if err != nil {
			return nil, err
		}
		h, err := w.src.RegisterArchive("tsi", raw)
		if err != nil {
			return nil, err
		}
		w.handle = h
	case TSIBinaryCached, TSIBinaryUncached:
		h, err := w.src.RegisterBinary("tsi", w.module, []*isa.MicroArch{march})
		if err != nil {
			return nil, err
		}
		w.handle = h
	}

	// Warm-up: one message registers the type remotely (JIT/load runs
	// once here, mirroring the paper's methodology of measuring JIT
	// separately from the steady state).
	if err := w.sendOne(); err != nil {
		return nil, err
	}
	cl.Run()
	if mode == TSIBitcodeUncached || mode == TSIBinaryUncached {
		w.src.DisableSendCache = true
	}
	return w, nil
}

// sendOne posts a single 1-byte-payload TSI message.
func (w *tsiWorld) sendOne() error {
	switch w.mode {
	case TSIActiveMessage:
		w.amEP.SendAM(1, 0, []byte{0})
		return nil
	default:
		_, err := w.src.Send(1, w.handle, "main", []byte{0})
		return err
	}
}

// RunTSI measures one mode on one platform.
func RunTSI(p testbed.Profile, mode TSIMode) (TSIResult, error) {
	w, err := newTSIWorld(p, mode)
	if err != nil {
		return TSIResult{}, err
	}
	res := TSIResult{Platform: p.Name, Mode: mode}
	eng := w.cluster.Eng

	// Latency: sequential messages, measuring post → remote execution
	// completion via the observer hook.
	var execAt sim.Time
	w.dst.Observer = func(_, _ string, _ uint64, when sim.Time) { execAt = when }
	var totalLat sim.Time
	for i := 0; i < tsiLatencyMsgs; i++ {
		start := eng.Now()
		if err := w.sendOne(); err != nil {
			return res, err
		}
		w.cluster.Run()
		totalLat += execAt - start
	}
	res.LatencyUS = (totalLat / tsiLatencyMsgs).Micros()

	// Message rate: pipelined back-to-back posts.
	start := eng.Now()
	for i := 0; i < tsiRateMsgs; i++ {
		if err := w.sendOne(); err != nil {
			return res, err
		}
	}
	w.cluster.Run()
	elapsed := execAt - start
	res.RateMsgSec = float64(tsiRateMsgs) / elapsed.Seconds()

	// Wire size of one steady-state message.
	bytesBefore := w.src.Node.Stats.BytesSent
	if err := w.sendOne(); err != nil {
		return res, err
	}
	w.cluster.Run()
	res.MsgBytes = int(w.src.Node.Stats.BytesSent - bytesBefore)

	// Decompose: lookup+exec measured analytically from the executed
	// instruction counts on the destination µarch, matching the paper's
	// estimation method (Eq. 1-3).
	execUS, err := tsiExecMicros(w.module, w.dst)
	if err != nil {
		return res, err
	}
	switch mode {
	case TSIActiveMessage:
		res.LookupExecUS = execUS + amTableLookup.Micros()
	default:
		res.LookupExecUS = execUS + jit.LookupCost.Micros()
	}
	res.TransUS = res.LatencyUS - res.LookupExecUS

	// One-time deployment cost (measured separately, like the paper's
	// JIT row).
	switch mode {
	case TSIBitcodeCached, TSIBitcodeUncached:
		res.JITms = w.dst.Session.CompileCost(w.module).Seconds() * 1e3
	case TSIBinaryCached, TSIBinaryUncached:
		// Load + GOT patch cost: from the registration bookkeeping.
		res.JITms = (120 * sim.Nanosecond).Seconds() * 1e3
	}
	if w.dst.LastExecErr != nil {
		return res, w.dst.LastExecErr
	}
	return res, nil
}

// amTableLookup is the pointer-table index cost of the AM baseline.
const amTableLookup = 20 * sim.Nanosecond

// tsiExecMicros computes the pure execution time of the TSI kernel on the
// destination node's µarch by running it against a scratch environment
// and pricing the dynamic operation counts.
func tsiExecMicros(m *ir.Module, dst *core.Runtime) (float64, error) {
	cm, err := mcode.Lower(m, dst.Node.March)
	if err != nil {
		return 0, err
	}
	env := ir.NewSimpleEnv(4096)
	ma, err := mcode.NewMachine(cm, env, mcode.NewLinkage(cm), ir.ExecLimits{StackBase: 2048, StackSize: 1024})
	if err != nil {
		return 0, err
	}
	if _, err := ma.Run("main", 0, 1, 64); err != nil {
		return 0, err
	}
	return mcode.Seconds(&ma.Counts, dst.Node.March) * 1e6, nil
}

// TSITable runs all applicable modes on a platform (Tables I+IV, II+V,
// III+VI are different views of the same five runs).
func TSITable(p testbed.Profile) ([]TSIResult, error) {
	modes := []TSIMode{TSIActiveMessage, TSIBitcodeUncached, TSIBitcodeCached,
		TSIBinaryUncached, TSIBinaryCached}
	var out []TSIResult
	for _, m := range modes {
		r, err := RunTSI(p, m)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", p.Name, m, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// CachedFrameBytes returns the protocol-level cached frame size for a
// 1-byte payload (sanity constant: 26 bytes, §V-A).
func CachedFrameBytes() int { return ifunc.TruncatedLen(1) }
