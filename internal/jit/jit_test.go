package jit

import (
	"errors"
	"testing"

	"threechains/internal/bitcode"
	"threechains/internal/ir"
	"threechains/internal/isa"
	"threechains/internal/linker"
	"threechains/internal/mcode"
	"threechains/internal/passes"
	"threechains/internal/sim"
)

// testNode bundles a fake node memory with an allocator.
type testNode struct {
	env  *ir.SimpleEnv
	next uint64
}

func newTestNode() *testNode {
	return &testNode{env: ir.NewSimpleEnv(1 << 16), next: 64}
}

func (n *testNode) alloc(g ir.Global) uint64 {
	addr := n.next
	copy(n.env.Memory[addr:], g.Init)
	n.next += (uint64(g.Size) + 7) &^ 7
	return addr
}

func tsiModule() *ir.Module {
	m := ir.NewModule("tsi")
	b := ir.NewBuilder(m)
	b.NewFunc("main", []ir.Type{ir.Ptr, ir.I64, ir.Ptr}, ir.I64)
	old := b.Load(ir.I64, b.Param(2), 0)
	inc := b.Add(old, b.Const64(1))
	b.Store(ir.I64, inc, b.Param(2), 0)
	b.Ret(inc)
	return m
}

func newSession(march *isa.MicroArch) (*Session, *testNode) {
	node := newTestNode()
	ld := linker.NewLoader()
	return NewSession(march, ld, node.alloc), node
}

func TestCompileAndRun(t *testing.T) {
	s, node := newSession(isa.XeonE5())
	m := tsiModule()
	c, cost, hit, err := s.Compile("k1", m)
	if err != nil {
		t.Fatal(err)
	}
	if hit || cost <= 0 {
		t.Fatalf("first compile: hit=%v cost=%v", hit, cost)
	}
	node.env.StoreU64(512, 41)
	ma, err := mcode.NewMachine(c.CM, node.env, c.Link, ir.ExecLimits{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ma.Run("main", 0, 0, 512)
	if err != nil || res.Value != 42 {
		t.Fatalf("run: %d, %v", res.Value, err)
	}
}

func TestCacheHitIsCheap(t *testing.T) {
	s, _ := newSession(isa.A64FX())
	m := tsiModule()
	_, cost1, hit1, err := s.Compile("k", m)
	if err != nil {
		t.Fatal(err)
	}
	c2, cost2, hit2, err := s.Compile("k", m)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 || !hit2 {
		t.Fatalf("hit flags: %v %v", hit1, hit2)
	}
	if cost2 >= cost1/100 {
		t.Fatalf("cache hit cost %v not far below compile cost %v", cost2, cost1)
	}
	if c2 == nil || s.Stats.CacheHits != 1 || s.Stats.Compiles != 1 {
		t.Fatalf("stats %+v", s.Stats)
	}
}

func TestJITCostOrderingAcrossPlatforms(t *testing.T) {
	// Paper Tables I-III: Xeon 0.83ms < BF2 4.50ms < A64FX 6.59ms.
	m := tsiModule()
	cost := func(march *isa.MicroArch) sim.Time {
		s, _ := newSession(march)
		return s.CompileCost(m)
	}
	xeon, bf2, a64fx := cost(isa.XeonE5()), cost(isa.CortexA72()), cost(isa.A64FX())
	if !(xeon < bf2 && bf2 < a64fx) {
		t.Fatalf("ordering wrong: xeon=%v bf2=%v a64fx=%v", xeon, bf2, a64fx)
	}
	// Magnitudes: sub-ms to ~10ms.
	if xeon < 100*sim.Microsecond || a64fx > 20*sim.Millisecond {
		t.Fatalf("magnitudes off: xeon=%v a64fx=%v", xeon, a64fx)
	}
}

func TestCompileLoadsDeps(t *testing.T) {
	node := newTestNode()
	ld := linker.NewLoader()
	lib := linker.NewDynLib("libcrypto.so")
	called := false
	lib.Funcs["crypto.hash"] = func(args []uint64) (uint64, error) {
		called = true
		return args[0] * 31, nil
	}
	if err := ld.Provide(lib); err != nil {
		t.Fatal(err)
	}
	s := NewSession(isa.XeonE5(), ld, node.alloc)

	m := ir.NewModule("withdeps")
	b := ir.NewBuilder(m)
	b.AddDep("libcrypto.so")
	b.DeclareExtern("crypto.hash")
	b.NewFunc("main", []ir.Type{ir.I64}, ir.I64)
	b.Ret(b.Call("crypto.hash", true, b.Param(0)))

	c, _, _, err := s.Compile("k", m)
	if err != nil {
		t.Fatal(err)
	}
	if !ld.Loaded("libcrypto.so") {
		t.Fatal("dep not loaded")
	}
	ma, _ := mcode.NewMachine(c.CM, node.env, c.Link, ir.ExecLimits{})
	res, err := ma.Run("main", 2)
	if err != nil || res.Value != 62 || !called {
		t.Fatalf("res=%d err=%v called=%v", res.Value, err, called)
	}
}

func TestCompileFailsOnMissingDep(t *testing.T) {
	s, _ := newSession(isa.XeonE5())
	m := ir.NewModule("broken")
	b := ir.NewBuilder(m)
	b.AddDep("libmissing.so")
	b.NewFunc("main", []ir.Type{}, ir.I64)
	b.Ret(b.Const64(0))
	if _, _, _, err := s.Compile("k", m); !errors.Is(err, linker.ErrNoLibrary) {
		t.Fatalf("err = %v, want no-library", err)
	}
}

func TestCompileFailsOnUnresolvedSymbol(t *testing.T) {
	s, _ := newSession(isa.XeonE5())
	m := ir.NewModule("unresolved")
	b := ir.NewBuilder(m)
	b.DeclareExtern("ghost.fn")
	b.NewFunc("main", []ir.Type{}, ir.I64)
	b.Ret(b.Call("ghost.fn", true))
	if _, _, _, err := s.Compile("k", m); !errors.Is(err, linker.ErrNoSymbol) {
		t.Fatalf("err = %v, want no-symbol", err)
	}
}

func TestGlobalsAllocatedAndInitialized(t *testing.T) {
	s, node := newSession(isa.XeonE5())
	m := ir.NewModule("g")
	b := ir.NewBuilder(m)
	b.AddGlobal("tbl", 16, []byte{7, 0, 0, 0, 0, 0, 0, 0})
	b.NewFunc("main", []ir.Type{}, ir.I64)
	g := b.GlobalAddr("tbl")
	b.Ret(b.Load(ir.I64, g, 0))
	c, _, _, err := s.Compile("k", m)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Globals) != 1 {
		t.Fatal("global not allocated")
	}
	ma, _ := mcode.NewMachine(c.CM, node.env, c.Link, ir.ExecLimits{})
	res, err := ma.Run("main")
	if err != nil || res.Value != 7 {
		t.Fatalf("res=%d err=%v", res.Value, err)
	}
}

func TestMicroArchSpecialization(t *testing.T) {
	// The same bitcode lowers to LSE atomics on A64FX and CAS loops on
	// BlueField-2 — the §III-C retargeting story at the JIT layer.
	m := ir.NewModule("atomic")
	b := ir.NewBuilder(m)
	b.NewFunc("main", []ir.Type{ir.Ptr}, ir.I64)
	b.Ret(b.AtomicAdd(b.Param(0), b.Const64(1)))

	has := func(march *isa.MicroArch, op mcode.MOp) bool {
		s, _ := newSession(march)
		c, _, _, err := s.Compile("k", m)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range c.CM.Funcs[0].Code {
			if in.Op == op {
				return true
			}
		}
		return false
	}
	if !has(isa.A64FX(), mcode.MAtomicAddLSE) {
		t.Fatal("A64FX JIT did not emit LSE")
	}
	if !has(isa.CortexA72(), mcode.MAtomicAddCAS) {
		t.Fatal("BF2 JIT did not emit CAS loop")
	}
}

func TestOptLevelAffectsCode(t *testing.T) {
	m := ir.NewModule("opt")
	b := ir.NewBuilder(m)
	b.NewFunc("main", []ir.Type{}, ir.I64)
	x := b.Add(b.Const64(20), b.Const64(22))
	b.Ret(b.Mul(x, b.Const64(1)))

	instrs := func(lvl passes.Level) int {
		s, _ := newSession(isa.XeonE5())
		s.OptLevel = lvl
		c, _, _, err := s.Compile("k", m)
		if err != nil {
			t.Fatal(err)
		}
		return c.CM.NumInstrs()
	}
	if o2, o0 := instrs(passes.O2), instrs(passes.O0); o2 >= o0 {
		t.Fatalf("O2 (%d instrs) not smaller than O0 (%d)", o2, o0)
	}
}

func TestCacheKeyStableAndContentSensitive(t *testing.T) {
	m := tsiModule()
	bc1, err := bitcode.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	bc2, _ := bitcode.Encode(m)
	if CacheKey(bc1) != CacheKey(bc2) {
		t.Fatal("same bitcode, different keys")
	}
	m2 := tsiModule()
	m2.Funcs[0].Blocks[0].Instrs[1].Imm = 2 // increment by 2 instead
	bc3, _ := bitcode.Encode(m2)
	if CacheKey(bc1) == CacheKey(bc3) {
		t.Fatal("different bitcode, same key")
	}
}

func TestLoadBinary(t *testing.T) {
	node := newTestNode()
	ld := linker.NewLoader()
	s := NewSession(isa.XeonE5(), ld, node.alloc)

	m := tsiModule()
	cm, err := mcode.Lower(m, isa.XeonE5())
	if err != nil {
		t.Fatal(err)
	}
	c, cost, hit, err := s.LoadBinary("bin1", cm)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first load reported a hit")
	}
	// Binary load must be far cheaper than JIT compilation.
	if jitCost := s.CompileCost(m); cost >= jitCost/10 {
		t.Fatalf("binary load %v not far below JIT %v", cost, jitCost)
	}
	node.env.StoreU64(256, 1)
	ma, _ := mcode.NewMachine(c.CM, node.env, c.Link, ir.ExecLimits{})
	res, err := ma.Run("main", 0, 0, 256)
	if err != nil || res.Value != 2 {
		t.Fatalf("res=%d err=%v", res.Value, err)
	}
	// Second load hits the cache.
	if _, _, hit2, _ := s.LoadBinary("bin1", cm); !hit2 {
		t.Fatal("binary reload missed cache")
	}
}

func TestLinkerDirect(t *testing.T) {
	ld := linker.NewLoader()
	lib := linker.NewDynLib("libm.so")
	lib.Funcs["sin"] = func(a []uint64) (uint64, error) { return 0, nil }
	lib.Data["pi"] = 1234
	if err := ld.Preload(lib); err != nil {
		t.Fatal(err)
	}
	if err := ld.Provide(linker.NewDynLib("libm.so")); !errors.Is(err, linker.ErrDupLibrary) {
		t.Fatalf("dup err = %v", err)
	}
	if _, ok := ld.BindFunc("sin"); !ok {
		t.Fatal("sin not bound")
	}
	if a, ok := ld.BindData("pi"); !ok || a != 1234 {
		t.Fatal("pi not bound")
	}
	if err := ld.LoadDeps([]string{"libm.so"}); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := ld.LoadDeps([]string{"nope.so"}); !errors.Is(err, linker.ErrNoLibrary) {
		t.Fatalf("err = %v", err)
	}
}
