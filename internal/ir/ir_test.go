package ir

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// buildCounter builds the paper's TSI kernel shape: increment an i64 at
// the target pointer.
func buildCounter(t *testing.T) *Module {
	t.Helper()
	m := NewModule("tsi")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{Ptr, I64, Ptr}, I64)
	old := b.Load(I64, b.Param(2), 0)
	inc := b.Add(old, b.Const64(1))
	b.Store(I64, inc, b.Param(2), 0)
	b.Ret(inc)
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func runMain(t *testing.T, m *Module, env *SimpleEnv, args ...uint64) uint64 {
	t.Helper()
	ip := NewInterp(m, env, ExecLimits{StackBase: 1 << 12, StackSize: 1 << 12})
	res, err := ip.Run("main", args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Value
}

func TestCounterIncrements(t *testing.T) {
	m := buildCounter(t)
	env := NewSimpleEnv(1 << 16)
	env.StoreU64(512, 41)
	got := runMain(t, m, env, 0, 0, 512)
	if got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if env.LoadU64(512) != 42 {
		t.Fatalf("memory = %d, want 42", env.LoadU64(512))
	}
}

func TestArithmeticSemantics(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder, x, y Reg) Reg
		x, y  uint64
		want  uint64
	}{
		{"add", func(b *Builder, x, y Reg) Reg { return b.Add(x, y) }, 3, 4, 7},
		{"sub-wrap", func(b *Builder, x, y Reg) Reg { return b.Sub(x, y) }, 1, 2, ^uint64(0)},
		{"mul", func(b *Builder, x, y Reg) Reg { return b.Mul(x, y) }, 7, 6, 42},
		{"sdiv-neg", func(b *Builder, x, y Reg) Reg { return b.SDiv(x, y) }, ^uint64(8), 2, ^uint64(3)},
		{"udiv", func(b *Builder, x, y Reg) Reg { return b.UDiv(x, y) }, ^uint64(0), 2, (^uint64(0)) / 2},
		{"srem", func(b *Builder, x, y Reg) Reg { return b.SRem(x, y) }, ^uint64(6), 3, ^uint64(0)},
		{"shl-mask", func(b *Builder, x, y Reg) Reg { return b.Shl(x, y) }, 1, 65, 2},
		{"ashr", func(b *Builder, x, y Reg) Reg { return b.AShr(x, y) }, ^uint64(7), 1, ^uint64(3)},
		{"xor", func(b *Builder, x, y Reg) Reg { return b.Xor(x, y) }, 0xff00, 0x0ff0, 0xf0f0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewModule("arith")
			b := NewBuilder(m)
			b.NewFunc("main", []Type{I64, I64}, I64)
			b.Ret(tc.build(b, b.Param(0), b.Param(1)))
			if err := Verify(m); err != nil {
				t.Fatalf("verify: %v", err)
			}
			env := NewSimpleEnv(1 << 14)
			if got := runMain(t, m, env, tc.x, tc.y); got != tc.want {
				t.Fatalf("got %#x, want %#x", got, tc.want)
			}
		})
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	m := NewModule("div0")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{I64, I64}, I64)
	b.Ret(b.SDiv(b.Param(0), b.Param(1)))
	env := NewSimpleEnv(1 << 12)
	ip := NewInterp(m, env, ExecLimits{})
	_, err := ip.Run("main", 1, 0)
	if !errors.Is(err, ErrDivideByZero) {
		t.Fatalf("err = %v, want divide-by-zero", err)
	}
}

func TestLoadStoreTypes(t *testing.T) {
	// Store a wide value through each narrow type and read it back.
	for _, ty := range []Type{I8, I16, I32, I64} {
		m := NewModule("mem")
		b := NewBuilder(m)
		b.NewFunc("main", []Type{I64, I64}, I64)
		addr := b.Const64(64)
		b.Store(ty, b.Param(0), addr, 0)
		b.Ret(b.Load(ty, addr, 0))
		env := NewSimpleEnv(1 << 12)
		v := runMain(t, m, env, 0x1122334455667788, 0)
		var want uint64
		switch ty {
		case I8:
			want = 0x88
		case I16:
			want = 0x7788
		case I32:
			want = 0x55667788
		case I64:
			want = 0x1122334455667788
		}
		if v != want {
			t.Errorf("%s roundtrip = %#x, want %#x", ty, v, want)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	m := NewModule("float")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{I64, I64}, I64)
	f := b.SIToFP(b.Param(0))
	g := b.FMul(f, b.ConstF(2.5))
	b.Ret(b.FPToSI(g))
	env := NewSimpleEnv(1 << 12)
	if got := runMain(t, m, env, 10, 0); got != 25 {
		t.Fatalf("10*2.5 = %d, want 25", got)
	}
}

func TestF32Store(t *testing.T) {
	m := NewModule("f32")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{I64, I64}, I64)
	addr := b.Const64(32)
	v := b.ConstF(1.5)
	b.Store(F32, v, addr, 0)
	back := b.Load(F32, addr, 0)
	b.Ret(b.FPToSI(b.FMul(back, b.ConstF(2))))
	env := NewSimpleEnv(1 << 12)
	if got := runMain(t, m, env, 0, 0); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
}

func TestControlFlowLoop(t *testing.T) {
	// sum 0..n-1 via a back-edge loop.
	m := NewModule("loop")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{I64, I64}, I64)
	acc := b.Alloca(8)
	i := b.Alloca(8)
	zero := b.Const64(0)
	b.Store(I64, zero, acc, 0)
	b.Store(I64, zero, i, 0)
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(head)
	b.SetBlock(head)
	iv := b.Load(I64, i, 0)
	b.CondBr(b.ICmp(PredSLT, iv, b.Param(0)), body, exit)
	b.SetBlock(body)
	iv2 := b.Load(I64, i, 0)
	a := b.Load(I64, acc, 0)
	b.Store(I64, b.Add(a, iv2), acc, 0)
	b.Store(I64, b.Add(iv2, b.Const64(1)), i, 0)
	b.Br(head)
	b.SetBlock(exit)
	b.Ret(b.Load(I64, acc, 0))
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	env := NewSimpleEnv(1 << 14)
	if got := runMain(t, m, env, 100, 0); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
}

func TestLocalCallAndRecursion(t *testing.T) {
	// fib via recursion exercises call frames and stack discipline.
	m := NewModule("fib")
	b := NewBuilder(m)
	b.NewFunc("fib", []Type{I64}, I64)
	lt2 := b.ICmp(PredSLT, b.Param(0), b.Const64(2))
	rec := b.NewBlock("rec")
	base := b.NewBlock("base")
	b.CondBr(lt2, base, rec)
	b.SetBlock(base)
	b.Ret(b.Param(0))
	b.SetBlock(rec)
	n1 := b.Sub(b.Param(0), b.Const64(1))
	n2 := b.Sub(b.Param(0), b.Const64(2))
	f1 := b.Call("fib", true, n1)
	f2 := b.Call("fib", true, n2)
	b.Ret(b.Add(f1, f2))

	b.NewFunc("main", []Type{I64, I64}, I64)
	b.Ret(b.Call("fib", true, b.Param(0)))
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	env := NewSimpleEnv(1 << 14)
	if got := runMain(t, m, env, 15, 0); got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestExternCall(t *testing.T) {
	m := NewModule("ext")
	b := NewBuilder(m)
	b.DeclareExtern("host.add")
	b.NewFunc("main", []Type{I64, I64}, I64)
	b.Ret(b.Call("host.add", true, b.Param(0), b.Param(1)))
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	env := NewSimpleEnv(1 << 12)
	env.Externs["host.add"] = func(args []uint64) (uint64, error) { return args[0] + args[1], nil }
	if got := runMain(t, m, env, 40, 2); got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestUnresolvedExternFails(t *testing.T) {
	m := NewModule("ext")
	b := NewBuilder(m)
	b.DeclareExtern("gone")
	b.NewFunc("main", []Type{I64, I64}, I64)
	b.Ret(b.Call("gone", true))
	env := NewSimpleEnv(1 << 12)
	ip := NewInterp(m, env, ExecLimits{})
	if _, err := ip.Run("main", 0, 0); !errors.Is(err, ErrUnresolved) {
		t.Fatalf("err = %v, want unresolved", err)
	}
}

func TestAtomics(t *testing.T) {
	m := NewModule("atomics")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{I64, I64}, I64)
	addr := b.Const64(128)
	b.Store(I64, b.Param(0), addr, 0)
	old := b.AtomicAdd(addr, b.Const64(5))
	prev := b.AtomicCAS(addr, b.Add(old, b.Const64(5)), b.Const64(99))
	_ = prev
	b.Ret(b.Load(I64, addr, 0))
	env := NewSimpleEnv(1 << 12)
	if got := runMain(t, m, env, 10, 0); got != 99 {
		t.Fatalf("after CAS got %d, want 99", got)
	}
}

func TestVectorOps(t *testing.T) {
	m := NewModule("vec")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{I64, I64}, I64)
	base := b.Const64(0)
	n := b.Const64(16)
	b.VSet(base, b.Const64(3), n)
	b.VBinOp(VPredAdd, base, base, base, n) // each elem becomes 6
	b.Ret(b.VReduce(VPredAdd, base, n))     // 16*6 = 96
	env := NewSimpleEnv(1 << 12)
	if got := runMain(t, m, env, 0, 0); got != 96 {
		t.Fatalf("vector sum = %d, want 96", got)
	}
}

func TestOutOfBoundsLoadTraps(t *testing.T) {
	m := NewModule("oob")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{I64, I64}, I64)
	b.Ret(b.Load(I64, b.Param(0), 0))
	env := NewSimpleEnv(64)
	ip := NewInterp(m, env, ExecLimits{})
	if _, err := ip.Run("main", 1<<40, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("err = %v, want out-of-bounds", err)
	}
}

func TestTrapInstruction(t *testing.T) {
	m := NewModule("trap")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{I64, I64}, I64)
	b.Trap(7)
	env := NewSimpleEnv(64)
	ip := NewInterp(m, env, ExecLimits{})
	_, err := ip.Run("main", 0, 0)
	var te *TrapError
	if !errors.As(err, &te) || te.Code != 7 {
		t.Fatalf("err = %v, want trap 7", err)
	}
	if !errors.Is(err, ErrTrap) {
		t.Fatalf("trap error does not unwrap to ErrTrap")
	}
}

func TestStepLimit(t *testing.T) {
	m := NewModule("spin")
	b := NewBuilder(m)
	b.NewFunc("main", []Type{I64, I64}, I64)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	env := NewSimpleEnv(64)
	ip := NewInterp(m, env, ExecLimits{MaxSteps: 1000})
	if _, err := ip.Run("main", 0, 0); !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestAllocaIsZeroedAndStackRestored(t *testing.T) {
	m := NewModule("alloca")
	b := NewBuilder(m)
	// callee dirties its stack then returns.
	b.NewFunc("dirty", []Type{}, Void)
	p := b.Alloca(16)
	b.Store(I64, b.Const64(-1), p, 0)
	b.RetVoid()
	// main: call dirty twice; second alloca must still read zero.
	b.NewFunc("main", []Type{I64, I64}, I64)
	b.Call("dirty", false)
	q := b.Alloca(16)
	b.Ret(b.Load(I64, q, 0))
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	env := NewSimpleEnv(1 << 14)
	if got := runMain(t, m, env, 0, 0); got != 0 {
		t.Fatalf("fresh alloca reads %d, want 0", got)
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	mk := func() (*Module, *Builder) {
		m := NewModule("bad")
		b := NewBuilder(m)
		b.NewFunc("main", []Type{I64}, I64)
		return m, b
	}
	t.Run("unterminated block", func(t *testing.T) {
		m, b := mk()
		_ = b.Add(b.Param(0), b.Param(0))
		if Verify(m) == nil {
			t.Fatal("verify accepted unterminated block")
		}
	})
	t.Run("bad branch target", func(t *testing.T) {
		m, b := mk()
		b.Br(99)
		if Verifier := Verify(m); Verifier == nil {
			t.Fatal("verify accepted bad branch target")
		}
	})
	t.Run("unknown call target", func(t *testing.T) {
		m, b := mk()
		b.Ret(b.Call("nowhere", true))
		if Verify(m) == nil {
			t.Fatal("verify accepted undeclared call target")
		}
	})
	t.Run("void return mismatch", func(t *testing.T) {
		m, b := mk()
		b.RetVoid()
		if Verify(m) == nil {
			t.Fatal("verify accepted void return from i64 function")
		}
	})
	t.Run("bad global", func(t *testing.T) {
		m, b := mk()
		g := b.GlobalAddr("missing")
		b.Ret(g)
		if Verify(m) == nil {
			t.Fatal("verify accepted undefined global")
		}
	})
	t.Run("arity mismatch", func(t *testing.T) {
		m, b := mk()
		b.Ret(b.Call("main", true)) // main takes 1 arg
		if Verify(m) == nil {
			t.Fatal("verify accepted arity mismatch")
		}
	})
	t.Run("duplicate function", func(t *testing.T) {
		m, b := mk()
		b.Ret(b.Param(0))
		b.NewFunc("main", []Type{I64}, I64)
		b.Ret(b.Param(0))
		if Verify(m) == nil {
			t.Fatal("verify accepted duplicate function names")
		}
	})
}

func TestPrintContainsStructure(t *testing.T) {
	m := buildCounter(t)
	s := Print(m)
	for _, want := range []string{"func @main", "load i64", "store i64", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printout missing %q:\n%s", want, s)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := buildCounter(t)
	c := m.Clone()
	c.Funcs[0].Blocks[0].Instrs[0].Imm = 999
	c.Name = "other"
	if m.Funcs[0].Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("clone shares instruction storage")
	}
	if m.Name == "other" {
		t.Fatal("clone shares name")
	}
}

func TestGenModuleAlwaysVerifiesAndTerminates(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := GenModule(rng, cfg)
		if err := Verify(m); err != nil {
			t.Fatalf("seed %d: generated module fails verify: %v", seed, err)
		}
		env := NewSimpleEnv(1 << 14)
		env.Globals["scratch"] = 0
		ip := NewInterp(m, env, ExecLimits{MaxSteps: 1 << 20, StackBase: 4096, StackSize: 4096})
		if _, err := ip.Run("main", uint64(seed), uint64(seed*3)); err != nil {
			t.Fatalf("seed %d: generated module traps: %v", seed, err)
		}
	}
}

func TestGenModuleDeterministic(t *testing.T) {
	a := GenModule(rand.New(rand.NewSource(42)), DefaultGenConfig())
	b := GenModule(rand.New(rand.NewSource(42)), DefaultGenConfig())
	if Print(a) != Print(b) {
		t.Fatal("same seed produced different modules")
	}
}

func TestTripleParse(t *testing.T) {
	// Type/width sanity that other packages rely on.
	if I64.Size() != 8 || F32.Size() != 4 || I8.Size() != 1 {
		t.Fatal("type sizes wrong")
	}
	if !Ptr.IsInt() || F64.IsInt() || !F32.IsFloat() {
		t.Fatal("type classification wrong")
	}
}

func TestPrintGoldenTSIShape(t *testing.T) {
	// The printer is part of the debugging surface; lock the structural
	// shape (not byte-exact formatting) of a known kernel.
	m := buildCounter(t)
	out := Print(m)
	wantLines := []string{
		`; module "tsi" source=c`,
		"func @main(ptr %r0, i64 %r1, ptr %r2) i64 {",
		"%r3 = load i64 [%r2 + 0]",
		"%r4 = const i64 1",
		"%r5 = add %r3, %r4",
		"store i64 %r5 -> [%r2 + 0]",
		"ret %r5",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Errorf("printout missing %q:\n%s", w, out)
		}
	}
}

func TestUsesCoversAllOperandKinds(t *testing.T) {
	// Uses() feeds DCE and fusion; every operand slot must be reported.
	cases := []struct {
		in   Instr
		want int
	}{
		{Instr{Op: OpAdd, Dst: 2, A: 0, B: 1, C: NoReg}, 2},
		{Instr{Op: OpSelect, Dst: 3, A: 0, B: 1, C: 2}, 3},
		{Instr{Op: OpCall, Dst: 1, A: NoReg, B: NoReg, C: NoReg, Args: []Reg{0, 2, 4}}, 3},
		{Instr{Op: OpVBinOp, Dst: NoReg, A: 0, B: 1, C: 2, Args: []Reg{3}}, 4},
		{Instr{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, C: NoReg}, 0},
		{Instr{Op: OpRet, A: 5, B: NoReg, C: NoReg, Dst: NoReg}, 1},
		{Instr{Op: OpBr, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg}, 0},
	}
	for i, tc := range cases {
		if got := len(tc.in.Uses(nil)); got != tc.want {
			t.Errorf("case %d (%s): %d uses, want %d", i, tc.in.Op, got, tc.want)
		}
	}
}
