package threechains_test

import (
	"testing"

	"threechains"
)

// These tests exercise the public facade exactly as the README and
// examples do — they are the compatibility surface.

func TestFacadeQuickstartFlow(t *testing.T) {
	cl := threechains.NewCluster(threechains.ThorXeon())
	src, dst := cl.Runtime(0), cl.Runtime(1)
	counter := dst.Node.Alloc(8)
	dst.TargetPtr = counter

	raw, err := threechains.BuildArchive(threechains.BuildTSI(), threechains.PaperTriples())
	if err != nil {
		t.Fatal(err)
	}
	h, err := src.RegisterArchive("tsi", raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := src.Send(1, h, "main", []byte{0}); err != nil {
			t.Fatal(err)
		}
		cl.Run()
	}
	v, err := threechains.LoadU64(dst, counter)
	if err != nil || v != 3 {
		t.Fatalf("counter = %d, %v", v, err)
	}
	if dst.Stats.JITCompiles != 1 {
		t.Fatalf("JIT ran %d times, want 1", dst.Stats.JITCompiles)
	}
}

func TestFacadeJuliaPath(t *testing.T) {
	mod, err := threechains.CompileJulia("inc", `
function main(p::Ptr, len::Int, tgt::Ptr)::Int
    v = load64(tgt, 0) + 1
    store64(tgt, 0, v)
    return v
end`)
	if err != nil {
		t.Fatal(err)
	}
	cl := threechains.NewCluster(threechains.ThorBF2())
	src, dst := cl.Runtime(0), cl.Runtime(1)
	slot := dst.Node.Alloc(8)
	dst.TargetPtr = slot
	if err := threechains.StoreU64(dst, slot, 41); err != nil {
		t.Fatal(err)
	}
	h, err := src.RegisterBitcode("inc", mod, threechains.AllTriples())
	if err != nil {
		t.Fatal(err)
	}
	src.Send(1, h, "main", nil)
	cl.Run()
	if v, _ := threechains.LoadU64(dst, slot); v != 42 {
		t.Fatalf("julia-path counter = %d", v)
	}
}

func TestFacadeBuilderPath(t *testing.T) {
	// Build a custom kernel with the low-level ("C path") builder and
	// ship it: double the i64 at the target pointer.
	m := threechains.NewModule("double")
	b := threechains.NewBuilder(m)
	b.NewFunc("main", []threechains.IRType{threechains.Ptr, threechains.I64, threechains.Ptr}, threechains.I64)
	v := b.Load(threechains.I64, b.Param(2), 0)
	d := b.Add(v, v)
	b.Store(threechains.I64, d, b.Param(2), 0)
	b.Ret(d)

	cl := threechains.NewCluster(threechains.Ookami())
	src, dst := cl.Runtime(0), cl.Runtime(1)
	slot := dst.Node.Alloc(8)
	dst.TargetPtr = slot
	threechains.StoreU64(dst, slot, 21)
	h, err := src.RegisterBitcode("double", m, threechains.PaperTriples())
	if err != nil {
		t.Fatal(err)
	}
	src.Send(1, h, "main", nil)
	cl.Run()
	if v, _ := threechains.LoadU64(dst, slot); v != 42 {
		t.Fatalf("doubled = %d", v)
	}
}

func TestFacadeClusterN(t *testing.T) {
	cl := threechains.NewClusterN(threechains.Ookami(), 5)
	if len(cl.Runtimes) != 5 {
		t.Fatalf("nodes = %d", len(cl.Runtimes))
	}
	for _, rt := range cl.Runtimes {
		if rt.Node.March.Name != "a64fx" {
			t.Fatalf("march = %s", rt.Node.March.Name)
		}
		if rt.Worker.IfuncPoll == 0 || rt.Worker.AMDispatch == 0 {
			t.Fatal("worker costs not configured from profile")
		}
	}
}

func TestFacadePropagator(t *testing.T) {
	cl := threechains.NewClusterN(threechains.ThorXeon(), 4)
	for _, rt := range cl.Runtimes {
		rt.TargetPtr = rt.Node.Alloc(8)
	}
	src := cl.Runtime(0)
	h, err := src.RegisterBitcode("wave", threechains.BuildPropagator(), threechains.PaperTriples())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 16)
	payload[0] = 3
	payload[8] = 1
	src.Send(1, h, "main", payload)
	cl.Run()
	total := uint64(0)
	for _, rt := range cl.Runtimes {
		v, _ := threechains.LoadU64(rt, rt.TargetPtr)
		total += v
	}
	if total != 4 {
		t.Fatalf("total visits = %d, want 4", total)
	}
}
