package obs

// The unified metrics registry. The runtime already keeps its counters
// in per-subsystem stats structs (core.RuntimeStats, ucx.WorkerStats,
// fabric.NodeStats, ifunc.StoreStats, place.Stats) — those fields stay
// exactly where they are (they ARE the compatibility accessors) and the
// registry holds typed descriptors pointing at them, so registration
// changes nothing on any hot path. Histograms are new storage: fixed
// log-scale (power-of-two) buckets sized for latency tails, observed
// behind nil-checks at completion sites.
//
// Snapshot order is registration order, which callers establish
// deterministically (per node, then per metric), so snapshots — like
// traces — are bit-identical across runs, engines, and shard counts.

import (
	"math/bits"
	"sync"
)

// Counter is one registered counter: a live pointer into an existing
// stats struct, or a closure for fields that need conversion.
type Counter struct {
	Node int
	Name string
	ptr  *uint64
	get  func() uint64
}

// Value reads the counter's current value.
func (c *Counter) Value() uint64 {
	if c.ptr != nil {
		return *c.ptr
	}
	return c.get()
}

// HistBuckets is the fixed bucket count: bucket i holds observations v
// with bits.Len64(v) == i, i.e. [2^(i-1), 2^i) for i ≥ 1 and {0} for
// i = 0 — log-scale resolution from picoseconds to hours.
const HistBuckets = 65

// Histogram is a log-scale distribution (latencies in picoseconds,
// sizes in bytes). Observe is mutex-guarded: completion callbacks on
// different shards may observe concurrently, and bucket/sum updates are
// commutative, so the final snapshot stays deterministic regardless of
// interleaving.
type Histogram struct {
	Node int
	Name string

	mu      sync.Mutex
	buckets [HistBuckets]uint64
	count   uint64
	sum     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.mu.Lock()
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Quantile returns the upper bound of the bucket holding the q-quantile
// sample (q in (0,1]); 0 when empty. Log-scale buckets make this exact
// to within a factor of two — the right resolution for tail latencies.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<63 - 1
}

// Registry is the cluster-wide metric set: counters and histograms in
// registration order.
type Registry struct {
	counters []*Counter
	hists    []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a live pointer into an existing stats field.
func (r *Registry) Counter(node int, name string, p *uint64) {
	r.counters = append(r.counters, &Counter{Node: node, Name: name, ptr: p})
}

// CounterFunc registers a computed counter (non-uint64 sources).
func (r *Registry) CounterFunc(node int, name string, get func() uint64) {
	r.counters = append(r.counters, &Counter{Node: node, Name: name, get: get})
}

// Histogram registers and returns a new log-scale histogram.
func (r *Registry) Histogram(node int, name string) *Histogram {
	h := &Histogram{Node: node, Name: name}
	r.hists = append(r.hists, h)
	return h
}

// MetricPoint is one snapshot row. Counters carry Value; histograms
// carry Count/Sum and the latency-tail quantiles.
type MetricPoint struct {
	Node  int    `json:"node"`
	Name  string `json:"name"`
	Value uint64 `json:"value,omitempty"`
	Count uint64 `json:"count,omitempty"`
	Sum   uint64 `json:"sum,omitempty"`
	P50   uint64 `json:"p50,omitempty"`
	P99   uint64 `json:"p99,omitempty"`
	P999  uint64 `json:"p999,omitempty"`
	Hist  bool   `json:"hist,omitempty"`
}

// Snapshot reads every metric in registration order. Call from host
// context (between runs): counter reads are unsynchronized by design.
func (r *Registry) Snapshot() []MetricPoint {
	out := make([]MetricPoint, 0, len(r.counters)+len(r.hists))
	for _, c := range r.counters {
		out = append(out, MetricPoint{Node: c.Node, Name: c.Name, Value: c.Value()})
	}
	for _, h := range r.hists {
		out = append(out, MetricPoint{
			Node: h.Node, Name: h.Name, Hist: true,
			Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), P999: h.Quantile(0.999),
		})
	}
	return out
}
