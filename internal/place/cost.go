package place

// The calibrated cost model: route-time estimates assembled from the same
// parameters the simulation charges — the fabric's LogGP wire model
// (fabric.NetParams), the per-µarch operation cost tables (isa.MicroArch,
// priced per dynamic step the way mcode.Cycles prices executed counts),
// the UCP protocol framing sizes (ucx header constants), and the JIT
// session's registration costs. The estimates are not required to be
// exact (queueing and batching effects are ignored); they only need to
// rank routes correctly, and because every input is virtual-time state
// they rank identically across runs, hosts and execution engines.

import (
	"threechains/internal/fabric"
	"threechains/internal/isa"
	"threechains/internal/jit"
	"threechains/internal/sim"
	"threechains/internal/ucx"
)

// NodeTraits is the per-node side of the model: how fast this node
// executes guest steps and how expensive its polling pickup is.
type NodeTraits struct {
	March *isa.MicroArch
	// ExecMult mirrors Runtime.ExecCostMultiplier (0 means 1): the knob
	// heterogeneous scenarios use for asymmetric node speeds.
	ExecMult float64
	// IfuncPoll is the node's calibrated poll pickup cost
	// (testbed.Profile.IfuncPoll).
	IfuncPoll sim.Time
}

// CostModel prices the routes of one (local node, remote node) pair.
type CostModel struct {
	Net    fabric.NetParams
	Local  NodeTraits
	Remote NodeTraits
}

// stepSeconds is the modeled mean wall time of one dynamic guest step on
// a µarch: a representative operation mix priced from the µarch's cost
// table, with the same superscalar ALU discount mcode.Cycles applies.
// Message kernels in this corpus are load/store-heavy (the TSI and DAPC
// shapes), which the mix reflects.
func stepSeconds(m *isa.MicroArch) float64 {
	alu := m.Cost[isa.OpALU]
	if m.IssueWidth > 1 {
		alu /= float64(m.IssueWidth)
	}
	cycles := 0.45*alu + 0.25*m.Cost[isa.OpLoad] + 0.15*m.Cost[isa.OpStore] + 0.15*m.Cost[isa.OpBranch]
	return m.CyclesToSeconds(cycles)
}

// ExecTime models executing steps dynamic instructions on a node.
func (m CostModel) ExecTime(n NodeTraits, steps float64) sim.Time {
	mult := n.ExecMult
	if mult <= 0 {
		mult = 1
	}
	return sim.FromSeconds(steps * stepSeconds(n.March) * mult)
}

// regTime is the registration charge a route pays on its executing side.
func regTime(registered bool, regCost sim.Time) sim.Time {
	if registered {
		return jit.LookupCost
	}
	return regCost
}

// ShipCost models the ship-code route: post the frame (truncated or full,
// req.FrameBytes carries the caching protocol's answer), cross the wire,
// pay the receiver's NIC write + poll pickup, register if the code is not
// interned at the destination yet, and execute on the destination core.
func (m CostModel) ShipCost(req Request) sim.Time {
	t := m.Net.SendOverhead + m.Net.WireTime(req.FrameBytes) + m.Net.NICOverhead
	t += m.Remote.IfuncPoll + m.Net.RecvOverhead
	t += regTime(req.RemoteRegistered, req.RemoteRegCost)
	t += m.ExecTime(m.Remote, req.MeanSteps)
	return t
}

// PullCost models the pull-data route: a one-sided GET round trip for the
// operand region (request descriptor out, NIC read, response framing +
// data back, initiator CQ poll — exactly the legs ucx.Endpoint.Get
// charges), registration on the local side if needed, local execution,
// and a one-sided PUT of the region when the kernel writes.
func (m CostModel) PullCost(req Request) sim.Time {
	t := m.Net.SendOverhead + m.Net.WireTime(ucx.GetReqBytes) + m.Net.NICOverhead
	t += m.Net.SendOverhead + m.Net.WireTime(ucx.GetRespBytes+req.DataBytes) +
		m.Net.NICOverhead + m.Net.RecvOverhead/2
	// A cold local registration is an investment that serves pulls to
	// every destination, unlike the remote JIT a cold ship pays per
	// destination: amortize it over the fan-out.
	fan := req.LocalRegFanout
	if fan < 1 {
		fan = 1
	}
	t += regTime(req.LocalRegistered, req.LocalRegCost/sim.Time(fan))
	t += m.ExecTime(m.Local, req.MeanSteps)
	if req.WriteBack {
		t += m.Net.SendOverhead + m.Net.WireTime(ucx.PutHeaderBytes+req.DataBytes) + m.Net.NICOverhead
	}
	return t
}
