package bench

// The region-cache sweep's own contract: exact GET-byte accounting on
// every grid row (elision at dirty 0, chunk-proportional deltas in
// between, whole-region fallback at full dirtiness), guest outcomes
// bit-identical cache-on vs cache-off and across engines. The
// differential test is covered by the CI fail-on-skip guard.

import (
	"testing"

	"threechains/internal/ifunc"
	"threechains/internal/mcode"
	"threechains/internal/testbed"
	"threechains/internal/ucx"
)

// TestRegionCacheSweepGrid pins the sweep's byte accounting: at dirty 0
// repeat pulls cost nothing beyond the cold region, in between they cost
// one framed chunk run proportional to the dirty span, and at full
// dirtiness the vectored form degrades to the cache-off baseline.
func TestRegionCacheSweepGrid(t *testing.T) {
	res, err := RegionCacheSweep(testbed.ThorXeon())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 0
	for _, rw := range RegionCacheRegionWords() {
		wantRows += len(RegionCacheDirtySweep(rw))
	}
	if len(res) != wantRows {
		t.Fatalf("%d rows, want %d", len(res), wantRows)
	}
	for _, r := range res {
		size := uint64(r.RegionWords * 8)
		demand := uint64(r.Rounds) * size
		repeats := uint64(r.Rounds - 1)
		if r.Cache.DemandBytes != demand || r.NoCache.DemandBytes != demand {
			t.Errorf("region=%d dirty=%d: demand %d/%d, want %d",
				r.RegionWords, r.DirtyWords, r.Cache.DemandBytes, r.NoCache.DemandBytes, demand)
		}
		if r.NoCache.GetBytes != demand || r.NoCache.Elides != 0 || r.NoCache.DeltaPulls != 0 {
			t.Errorf("region=%d dirty=%d: nocache GET=%d elides=%d deltas=%d, want %d/0/0",
				r.RegionWords, r.DirtyWords, r.NoCache.GetBytes, r.NoCache.Elides, r.NoCache.DeltaPulls, demand)
		}
		if r.Cache.ResultHash != r.NoCache.ResultHash {
			t.Errorf("region=%d dirty=%d: guest outcome diverged between modes",
				r.RegionWords, r.DirtyWords)
		}
		if r.Cache.VirtTime > r.NoCache.VirtTime {
			t.Errorf("region=%d dirty=%d: cache virtual time %d exceeds cache-off %d",
				r.RegionWords, r.DirtyWords, r.Cache.VirtTime, r.NoCache.VirtTime)
		}

		var wantGet uint64
		var wantElides, wantDeltas uint64
		switch {
		case r.DirtyWords == 0:
			// One cold region; every repeat elides.
			wantGet = size
			wantElides, wantDeltas = repeats, 0
		case r.DirtyWords >= r.RegionWords:
			// Fully dirty: the framed form never pays — cache-off bytes.
			wantGet = demand
			wantElides, wantDeltas = 0, 0
		default:
			// One contiguous dirty run of ceil(dirtyBytes/chunk) chunks.
			dirtyBytes := uint64(r.DirtyWords * 8)
			chunks := (dirtyBytes + ifunc.RegionChunkBytes - 1) / ifunc.RegionChunkBytes
			wire := uint64(ucx.GetSegHeaderBytes) + chunks*ifunc.RegionChunkBytes
			wantGet = size + repeats*wire
			wantElides, wantDeltas = 0, repeats
		}
		if r.Cache.GetBytes != wantGet {
			t.Errorf("region=%d dirty=%d: cache GET bytes %d, want %d",
				r.RegionWords, r.DirtyWords, r.Cache.GetBytes, wantGet)
		}
		if r.Cache.Elides != wantElides || r.Cache.DeltaPulls != wantDeltas {
			t.Errorf("region=%d dirty=%d: elides=%d deltas=%d, want %d/%d",
				r.RegionWords, r.DirtyWords, r.Cache.Elides, r.Cache.DeltaPulls, wantElides, wantDeltas)
		}
		if r.DirtyWords < r.RegionWords && r.SavingsPct <= 0 {
			t.Errorf("region=%d dirty=%d: savings %.2f%%, want > 0",
				r.RegionWords, r.DirtyWords, r.SavingsPct)
		}
	}
}

// TestRegionCacheSweepDifferential pins the sweep's guest outcomes
// across engines and reruns: every row's result hash (already asserted
// cache-mode-invariant inside the sweep) must be identical on every
// execution engine.
func TestRegionCacheSweepDifferential(t *testing.T) {
	hashes := func(p testbed.Profile) []string {
		res, err := RegionCacheSweep(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Engine, err)
		}
		out := make([]string, len(res))
		for i, r := range res {
			out[i] = r.Cache.ResultHash
		}
		return out
	}
	base := hashes(testbed.ThorXeon())
	if again := hashes(testbed.ThorXeon()); len(again) != len(base) {
		t.Fatalf("rerun row count %d, want %d", len(again), len(base))
	} else {
		for i := range base {
			if again[i] != base[i] {
				t.Fatalf("row %d: rerun hash %s, want %s", i, again[i], base[i])
			}
		}
	}
	for _, name := range mcode.EngineNames() {
		p := testbed.ThorXeon()
		p.Engine = name
		got := hashes(p)
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("engine %s row %d: hash %s, want %s", name, i, got[i], base[i])
			}
		}
	}
}

// BenchmarkRegionCacheSweep is the CI bench smoke for the sweep (one
// iteration in the bench job).
func BenchmarkRegionCacheSweep(b *testing.B) {
	p := testbed.ThorXeon()
	for i := 0; i < b.N; i++ {
		if _, err := RegionCacheSweep(p); err != nil {
			b.Fatal(err)
		}
	}
}
