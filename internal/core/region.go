package core

// The data-region cache: the content-addressed machinery of PR 7
// extended from code archives to operand regions. The owner of a pulled
// region tracks a per-region version counter (ifunc.RegionClock) bumped
// on every write — one-sided PUT/PutV application via the fabric write
// observer, guest kernel stores via executeBatchAt — so a puller can
// tell from deterministic virtual-time state alone whether its staged
// copy is current. The puller keeps one cache entry per (owner, region):
// the staged snapshot interned in the node's content store (BlobData,
// sharing the StoreBudget LRU with code blobs), its per-chunk FNV-1a
// hashes, and the owner version the snapshot reflects.
//
// A repeat pull negotiates against that entry before touching the wire:
//
//   - version hit  → the GET is elided entirely (zero wire legs);
//   - stale        → a host-side chunk diff picks the changed chunks and
//     a vectored chunk-granular ucx.GetV fetches only those, falling
//     back to a whole-region Get when the per-segment framing would not
//     undercut the region;
//   - no live entry → whole-region Get, exactly the pre-cache route.
//
// Correctness contract: like real RDMA, a pull that races writes to the
// same region is undefined — callers must serialize pulls and writes per
// region, which the offload stream's per-destination serialization
// provides. Under that contract the staged bytes of every mode equal
// what a whole-region GET would have returned, so guest outcomes are
// bit-identical cache-on vs cache-off (pinned by differential tests);
// only wire bytes and virtual time may move. The version peek itself is
// a zero-cost virtual-time read gated exactly like the CAS negotiation
// (casPeer: same shard partition only, off under DisableCAS), so sharded
// runs degrade to whole-region pulls for cross-partition destinations
// and stay bit-identical at every shard count.

import (
	"bytes"

	"threechains/internal/ifunc"
	"threechains/internal/ucx"
)

// regionKey identifies one staged region: the owner node and the exact
// region bounds (distinct overlapping pulls get distinct entries).
type regionKey struct {
	dst        int
	addr, size uint64
}

// regionEntry is one staged region the puller may reuse.
type regionEntry struct {
	// storeHash keys the snapshot in the node's content store; snapshot
	// is the canonical buffer Intern returned. The entry is live only
	// while the store still holds exactly that buffer (budget eviction
	// invalidates the entry; a content-hash collision fails the pointer
	// identity check and reads as dead — never as someone else's bytes).
	storeHash uint64
	snapshot  []byte
	// chunks are the snapshot's per-chunk FNV-1a hashes — what a real
	// protocol would exchange to localize staleness.
	chunks []uint64
	// version is the owner's region version the snapshot reflects; 0
	// means unknown (a write-back is in flight), which never matches a
	// live owner version, so a racing validity check degrades to a diff.
	version uint64
}

// regionPeer returns the owner runtime when the region negotiation may
// read its clock and memory: the casPeer gate (same shard partition,
// CAS enabled) plus the region cache's own kill switch. Pulls from an
// ineligible peer run the pre-cache whole-region route.
func (r *Runtime) regionPeer(dst int) *Runtime {
	if r.DisableRegionCache || dst == r.Node.ID {
		return nil
	}
	return r.casPeer(dst)
}

// regionEntryLive reports whether e's snapshot is still resident in the
// content store, via a recency-touching Get when touch is set (a pull
// actually reusing the entry) or a recency-neutral Peek otherwise (the
// planner's pricing probe). Liveness requires pointer identity with the
// canonical store buffer: eviction and collisions both read as dead.
func (r *Runtime) regionEntryLive(e *regionEntry, touch bool) bool {
	if e == nil || len(e.snapshot) == 0 {
		return false
	}
	var data []byte
	var ok bool
	if touch {
		data, ok = r.Store.Get(e.storeHash)
	} else {
		data, ok = r.Store.Peek(e.storeHash)
	}
	return ok && len(data) == len(e.snapshot) && &data[0] == &e.snapshot[0]
}

// regionEntryFor returns the live cache entry for (dst, addr, size), or
// nil. Recency semantics follow regionEntryLive's touch flag.
func (r *Runtime) regionEntryFor(dst int, addr, size uint64, touch bool) *regionEntry {
	e := r.regionCache[regionKey{dst, addr, size}]
	if e == nil || !r.regionEntryLive(e, touch) {
		return nil
	}
	return e
}

// staleSegments returns the chunk-granular byte ranges of cur (the
// owner's current region bytes) that differ from the staged snapshot,
// adjacent stale chunks coalesced into one segment. The hash comparison
// models the wire protocol (per-chunk FNV-1a against the entry's stored
// hashes); the byte comparison guards the astronomically rare collision
// so the cache can never stage wrong bytes — a colliding chunk reads as
// stale and is re-fetched.
func staleSegments(snap, cur []byte, chunks []uint64) []ucx.GetSeg {
	n := len(cur)
	nc := ifunc.RegionChunks(n)
	var segs []ucx.GetSeg
	runStart := -1
	for c := 0; c <= nc; c++ {
		stale := false
		if c < nc {
			off := c * ifunc.RegionChunkBytes
			end := off + ifunc.RegionChunkBytes
			if end > n {
				end = n
			}
			cc := cur[off:end]
			stale = c >= len(chunks) || ifunc.ContentHash(cc) != chunks[c] ||
				!bytes.Equal(cc, snap[off:end])
		}
		if stale {
			if runStart < 0 {
				runStart = c
			}
			continue
		}
		if runStart >= 0 {
			off := runStart * ifunc.RegionChunkBytes
			end := c * ifunc.RegionChunkBytes
			if end > n {
				end = n
			}
			segs = append(segs, ucx.GetSeg{Off: off, Len: end - off})
			runStart = -1
		}
	}
	return segs
}

// regionCacheStore interns snap (the bytes the owner's region holds, or
// will hold once an in-flight write-back lands) as the cache entry for
// (dst, addr, size). The snapshot enters the content store as an
// unpinned BlobData blob: it
// shares the StoreBudget LRU with code blobs and evicts like any other
// cache tail — an evicted snapshot simply costs the next pull a full
// GET. version 0 marks the entry provisional (write-back in flight);
// the caller stamps the real owner version once it is known.
func (r *Runtime) regionCacheStore(dst int, addr, size uint64, snap []byte, version uint64) *regionEntry {
	if r.regionCache == nil {
		r.regionCache = make(map[regionKey]*regionEntry)
	}
	k := regionKey{dst, addr, size}
	e := r.regionCache[k]
	if e == nil {
		e = &regionEntry{}
		r.regionCache[k] = e
	}
	h := ifunc.ContentHash(snap)
	e.storeHash = h
	e.snapshot = r.Store.Intern(h, ifunc.BlobData, snap, 0)
	e.chunks = ifunc.AppendChunkHashes(e.chunks[:0], e.snapshot)
	e.version = version
	return e
}
