package ir

import (
	"errors"
	"fmt"
	"math"
)

// Env is the execution environment an IR program runs against: the owning
// node's byte-addressable memory, resolved global addresses, and external
// symbol bindings. Both the reference interpreter here and the machine-code
// VM (package mcode) execute against the same interface, which lets tests
// assert that lowering preserves semantics.
type Env interface {
	// Mem returns the node memory. Pointers in IR programs are offsets
	// into this slice.
	Mem() []byte
	// GlobalAddr resolves a global (module-level or dependency-exported)
	// to its loaded address.
	GlobalAddr(name string) (uint64, bool)
	// CallExtern invokes an external symbol (runtime intrinsic or
	// shared-library function). Registers pass and return as raw 64-bit
	// values.
	CallExtern(sym string, args []uint64) (uint64, error)
}

// ExecLimits bounds an execution, protecting property tests and malformed
// guest code from hanging the simulation.
type ExecLimits struct {
	// MaxSteps caps the number of executed instructions (0 = default).
	MaxSteps int64
	// StackBase and StackSize delimit the alloca arena inside Env.Mem().
	StackBase uint64
	StackSize uint64
}

// DefaultMaxSteps bounds executions whose limits leave MaxSteps zero.
const DefaultMaxSteps = 50_000_000

// Execution errors. Trap conditions wrap these so callers can classify.
var (
	ErrMaxSteps      = errors.New("ir: step limit exceeded")
	ErrDivideByZero  = errors.New("ir: integer divide by zero")
	ErrOutOfBounds   = errors.New("ir: memory access out of bounds")
	ErrStackOverflow = errors.New("ir: alloca arena exhausted")
	ErrBadFunction   = errors.New("ir: no such function")
	ErrTrap          = errors.New("ir: trap")
	ErrUnresolved    = errors.New("ir: unresolved symbol")
)

// TrapError is returned when guest code executes OpTrap.
type TrapError struct{ Code int64 }

// Error implements error.
func (t *TrapError) Error() string { return fmt.Sprintf("ir: trap with code %d", t.Code) }

// Unwrap lets errors.Is(err, ErrTrap) match.
func (t *TrapError) Unwrap() error { return ErrTrap }

// ExecResult reports a completed interpretation.
type ExecResult struct {
	// Value is the returned register (0 for void functions).
	Value uint64
	// Steps is the number of IR instructions executed, including those of
	// callees.
	Steps int64
}

// Interp is the reference interpreter. It walks IR directly with no
// lowering; it is the semantic oracle for the JIT/VM path and the baseline
// "unoptimized" execution tier.
type Interp struct {
	Mod    *Module
	Env    Env
	Limits ExecLimits

	steps int64
	sp    uint64 // bump pointer within the alloca arena
}

// NewInterp returns an interpreter for mod against env.
func NewInterp(mod *Module, env Env, lim ExecLimits) *Interp {
	if lim.MaxSteps == 0 {
		lim.MaxSteps = DefaultMaxSteps
	}
	return &Interp{Mod: mod, Env: env, Limits: lim, sp: lim.StackBase}
}

// Run executes the named function with the given arguments.
func (ip *Interp) Run(fn string, args ...uint64) (ExecResult, error) {
	f := ip.Mod.Func(fn)
	if f == nil {
		return ExecResult{}, fmt.Errorf("%w: %q", ErrBadFunction, fn)
	}
	if len(args) != len(f.Params) {
		return ExecResult{}, fmt.Errorf("ir: %s: got %d args, want %d", fn, len(args), len(f.Params))
	}
	savedSP := ip.sp
	v, err := ip.call(f, args)
	ip.sp = savedSP
	if err != nil {
		return ExecResult{Steps: ip.steps}, err
	}
	return ExecResult{Value: v, Steps: ip.steps}, nil
}

// call interprets one function activation.
func (ip *Interp) call(f *Func, args []uint64) (uint64, error) {
	regs := make([]uint64, f.NumRegs)
	copy(regs, args)
	frameSP := ip.sp
	defer func() { ip.sp = frameSP }()

	mem := ip.Env.Mem()
	bi := 0
	for {
		blk := f.Blocks[bi]
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			ip.steps++
			if ip.steps > ip.Limits.MaxSteps {
				return 0, ErrMaxSteps
			}
			switch in.Op {
			case OpNop:
			case OpConst:
				regs[in.Dst] = uint64(in.Imm)
			case OpFConst:
				regs[in.Dst] = uint64(in.Imm)
			case OpAdd:
				regs[in.Dst] = regs[in.A] + regs[in.B]
			case OpSub:
				regs[in.Dst] = regs[in.A] - regs[in.B]
			case OpMul:
				regs[in.Dst] = regs[in.A] * regs[in.B]
			case OpSDiv:
				if regs[in.B] == 0 {
					return 0, ErrDivideByZero
				}
				if int64(regs[in.A]) == math.MinInt64 && int64(regs[in.B]) == -1 {
					regs[in.Dst] = regs[in.A] // wraps, like hardware
				} else {
					regs[in.Dst] = uint64(int64(regs[in.A]) / int64(regs[in.B]))
				}
			case OpUDiv:
				if regs[in.B] == 0 {
					return 0, ErrDivideByZero
				}
				regs[in.Dst] = regs[in.A] / regs[in.B]
			case OpSRem:
				if regs[in.B] == 0 {
					return 0, ErrDivideByZero
				}
				if int64(regs[in.A]) == math.MinInt64 && int64(regs[in.B]) == -1 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = uint64(int64(regs[in.A]) % int64(regs[in.B]))
				}
			case OpURem:
				if regs[in.B] == 0 {
					return 0, ErrDivideByZero
				}
				regs[in.Dst] = regs[in.A] % regs[in.B]
			case OpAnd:
				regs[in.Dst] = regs[in.A] & regs[in.B]
			case OpOr:
				regs[in.Dst] = regs[in.A] | regs[in.B]
			case OpXor:
				regs[in.Dst] = regs[in.A] ^ regs[in.B]
			case OpShl:
				regs[in.Dst] = regs[in.A] << (regs[in.B] & 63)
			case OpLShr:
				regs[in.Dst] = regs[in.A] >> (regs[in.B] & 63)
			case OpAShr:
				regs[in.Dst] = uint64(int64(regs[in.A]) >> (regs[in.B] & 63))
			case OpFAdd:
				regs[in.Dst] = f64bits(f64frombits(regs[in.A]) + f64frombits(regs[in.B]))
			case OpFSub:
				regs[in.Dst] = f64bits(f64frombits(regs[in.A]) - f64frombits(regs[in.B]))
			case OpFMul:
				regs[in.Dst] = f64bits(f64frombits(regs[in.A]) * f64frombits(regs[in.B]))
			case OpFDiv:
				regs[in.Dst] = f64bits(f64frombits(regs[in.A]) / f64frombits(regs[in.B]))
			case OpICmp:
				regs[in.Dst] = boolToU64(evalICmp(in.Pred, regs[in.A], regs[in.B]))
			case OpFCmp:
				regs[in.Dst] = boolToU64(evalFCmp(in.Pred, f64frombits(regs[in.A]), f64frombits(regs[in.B])))
			case OpTrunc:
				regs[in.Dst] = truncVal(in.Ty, regs[in.A])
			case OpSExt:
				regs[in.Dst] = sextVal(in.Ty, regs[in.A])
			case OpSIToFP:
				regs[in.Dst] = f64bits(float64(int64(regs[in.A])))
			case OpUIToFP:
				regs[in.Dst] = f64bits(float64(regs[in.A]))
			case OpFPToSI:
				regs[in.Dst] = uint64(fpToI64(f64frombits(regs[in.A])))
			case OpFPToUI:
				regs[in.Dst] = fpToU64(f64frombits(regs[in.A]))
			case OpSelect:
				if regs[in.A] != 0 {
					regs[in.Dst] = regs[in.B]
				} else {
					regs[in.Dst] = regs[in.C]
				}
			case OpAlloca:
				size := (uint64(in.Imm) + 7) &^ 7
				if ip.sp+size > ip.Limits.StackBase+ip.Limits.StackSize {
					return 0, ErrStackOverflow
				}
				regs[in.Dst] = ip.sp
				for i := ip.sp; i < ip.sp+size; i++ {
					mem[i] = 0
				}
				ip.sp += size
			case OpLoad:
				v, err := loadMem(mem, regs[in.A]+uint64(in.Imm), in.Ty)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case OpStore:
				if err := storeMem(mem, regs[in.B]+uint64(in.Imm), in.Ty, regs[in.A]); err != nil {
					return 0, err
				}
			case OpPtrAdd:
				regs[in.Dst] = regs[in.A] + regs[in.B]*uint64(in.Imm2) + uint64(in.Imm)
			case OpGlobal:
				addr, ok := ip.Env.GlobalAddr(in.Sym)
				if !ok {
					return 0, fmt.Errorf("%w: global %q", ErrUnresolved, in.Sym)
				}
				regs[in.Dst] = addr
			case OpBr:
				bi = in.T0
				goto nextBlock
			case OpCondBr:
				if regs[in.A] != 0 {
					bi = in.T0
				} else {
					bi = in.T1
				}
				goto nextBlock
			case OpRet:
				if in.A == NoReg {
					return 0, nil
				}
				return regs[in.A], nil
			case OpCall:
				argv := make([]uint64, len(in.Args))
				for i, a := range in.Args {
					argv[i] = regs[a]
				}
				var v uint64
				var err error
				if callee := ip.Mod.Func(in.Sym); callee != nil {
					v, err = ip.call(callee, argv)
				} else {
					v, err = ip.Env.CallExtern(in.Sym, argv)
				}
				if err != nil {
					return 0, err
				}
				if in.Dst != NoReg {
					regs[in.Dst] = v
				}
				mem = ip.Env.Mem() // extern may have grown node memory
			case OpAtomicAdd:
				old, err := loadMem(mem, regs[in.A], I64)
				if err != nil {
					return 0, err
				}
				if err := storeMem(mem, regs[in.A], I64, old+regs[in.B]); err != nil {
					return 0, err
				}
				regs[in.Dst] = old
			case OpAtomicCAS:
				old, err := loadMem(mem, regs[in.A], I64)
				if err != nil {
					return 0, err
				}
				if old == regs[in.B] {
					if err := storeMem(mem, regs[in.A], I64, regs[in.C]); err != nil {
						return 0, err
					}
				}
				regs[in.Dst] = old
			case OpVSet:
				if err := vset(mem, regs[in.A], regs[in.B], regs[in.C]); err != nil {
					return 0, err
				}
			case OpVCopy:
				if err := vcopy(mem, regs[in.A], regs[in.B], regs[in.C]); err != nil {
					return 0, err
				}
			case OpVBinOp:
				if err := vbinop(mem, in.Pred, regs[in.A], regs[in.B], regs[in.C], regs[in.Args[0]]); err != nil {
					return 0, err
				}
			case OpVReduce:
				v, err := vreduce(mem, in.Pred, regs[in.A], regs[in.B])
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case OpTrap:
				return 0, &TrapError{Code: in.Imm}
			default:
				return 0, fmt.Errorf("ir: interp: unknown opcode %s", in.Op)
			}
		}
		// A verified block always ends in a terminator, so reaching here
		// means the module was not verified.
		return 0, fmt.Errorf("ir: block %q fell through", blk.Name)
	nextBlock:
	}
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func evalICmp(p Pred, a, b uint64) bool {
	switch p {
	case PredEQ:
		return a == b
	case PredNE:
		return a != b
	case PredSLT:
		return int64(a) < int64(b)
	case PredSLE:
		return int64(a) <= int64(b)
	case PredSGT:
		return int64(a) > int64(b)
	case PredSGE:
		return int64(a) >= int64(b)
	case PredULT:
		return a < b
	case PredULE:
		return a <= b
	case PredUGT:
		return a > b
	case PredUGE:
		return a >= b
	}
	return false
}

func evalFCmp(p Pred, a, b float64) bool {
	switch p {
	case PredOEQ:
		return a == b
	case PredONE:
		return a != b && !math.IsNaN(a) && !math.IsNaN(b)
	case PredOLT:
		return a < b
	case PredOLE:
		return a <= b
	case PredOGT:
		return a > b
	case PredOGE:
		return a >= b
	}
	return false
}

func truncVal(ty Type, v uint64) uint64 {
	switch ty {
	case I8:
		return v & 0xff
	case I16:
		return v & 0xffff
	case I32:
		return v & 0xffffffff
	}
	return v
}

func sextVal(ty Type, v uint64) uint64 {
	switch ty {
	case I8:
		return uint64(int64(int8(v)))
	case I16:
		return uint64(int64(int16(v)))
	case I32:
		return uint64(int64(int32(v)))
	}
	return v
}

// fpToI64 converts with saturation-free hardware-like truncation; NaN
// converts to 0 to keep semantics deterministic across backends.
func fpToI64(f float64) int64 {
	if math.IsNaN(f) {
		return 0
	}
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}

func fpToU64(f float64) uint64 {
	if math.IsNaN(f) || f <= 0 {
		return 0
	}
	if f >= math.MaxUint64 {
		return math.MaxUint64
	}
	return uint64(f)
}

// loadMem reads a ty-sized little-endian value at addr.
func loadMem(mem []byte, addr uint64, ty Type) (uint64, error) {
	size := uint64(ty.Size())
	if addr >= uint64(len(mem)) || addr+size > uint64(len(mem)) {
		return 0, fmt.Errorf("%w: load %s at %#x (mem %d)", ErrOutOfBounds, ty, addr, len(mem))
	}
	var v uint64
	for i := uint64(0); i < size; i++ {
		v |= uint64(mem[addr+i]) << (8 * i)
	}
	switch ty {
	case F32:
		return f64bits(float64(math.Float32frombits(uint32(v)))), nil
	default:
		return v, nil
	}
}

// storeMem writes a ty-sized little-endian value at addr.
func storeMem(mem []byte, addr uint64, ty Type, v uint64) error {
	size := uint64(ty.Size())
	if addr >= uint64(len(mem)) || addr+size > uint64(len(mem)) {
		return fmt.Errorf("%w: store %s at %#x (mem %d)", ErrOutOfBounds, ty, addr, len(mem))
	}
	if ty == F32 {
		v = uint64(math.Float32bits(float32(f64frombits(v))))
	}
	for i := uint64(0); i < size; i++ {
		mem[addr+i] = byte(v >> (8 * i))
	}
	return nil
}

func vecBounds(mem []byte, addr, n uint64) error {
	if n > uint64(len(mem))/8+1 {
		return fmt.Errorf("%w: vector count %d", ErrOutOfBounds, n)
	}
	end := addr + n*8
	if addr > uint64(len(mem)) || end > uint64(len(mem)) {
		return fmt.Errorf("%w: vector op at %#x x %d (mem %d)", ErrOutOfBounds, addr, n, len(mem))
	}
	return nil
}

func vset(mem []byte, dst, val, n uint64) error {
	if err := vecBounds(mem, dst, n); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		storeU64(mem, dst+i*8, val)
	}
	return nil
}

func vcopy(mem []byte, dst, src, n uint64) error {
	if err := vecBounds(mem, dst, n); err != nil {
		return err
	}
	if err := vecBounds(mem, src, n); err != nil {
		return err
	}
	copy(mem[dst:dst+n*8], mem[src:src+n*8])
	return nil
}

func vbinop(mem []byte, p Pred, dst, a, b, n uint64) error {
	for _, base := range []uint64{dst, a, b} {
		if err := vecBounds(mem, base, n); err != nil {
			return err
		}
	}
	for i := uint64(0); i < n; i++ {
		x := loadU64(mem, a+i*8)
		y := loadU64(mem, b+i*8)
		storeU64(mem, dst+i*8, velem(p, x, y))
	}
	return nil
}

func vreduce(mem []byte, p Pred, src, n uint64) (uint64, error) {
	if err := vecBounds(mem, src, n); err != nil {
		return 0, err
	}
	var acc uint64
	switch p {
	case VPredMul, VPredAnd:
		acc = 1
		if p == VPredAnd {
			acc = ^uint64(0)
		}
	case VPredMax:
		acc = uint64(uint64(1) << 63) // math.MinInt64 as bits
	case VPredMin:
		acc = uint64(math.MaxInt64)
	}
	for i := uint64(0); i < n; i++ {
		acc = velem(p, acc, loadU64(mem, src+i*8))
	}
	return acc, nil
}

func velem(p Pred, x, y uint64) uint64 {
	switch p {
	case VPredAdd:
		return x + y
	case VPredSub:
		return x - y
	case VPredMul:
		return x * y
	case VPredAnd:
		return x & y
	case VPredXor:
		return x ^ y
	case VPredMax:
		if int64(x) >= int64(y) {
			return x
		}
		return y
	case VPredMin:
		if int64(x) <= int64(y) {
			return x
		}
		return y
	}
	return 0
}

// loadU64 and storeU64 are unchecked 8-byte little-endian accessors used
// after bounds have been validated.
func loadU64(mem []byte, addr uint64) uint64 {
	_ = mem[addr+7]
	return uint64(mem[addr]) | uint64(mem[addr+1])<<8 | uint64(mem[addr+2])<<16 |
		uint64(mem[addr+3])<<24 | uint64(mem[addr+4])<<32 | uint64(mem[addr+5])<<40 |
		uint64(mem[addr+6])<<48 | uint64(mem[addr+7])<<56
}

func storeU64(mem []byte, addr, v uint64) {
	_ = mem[addr+7]
	mem[addr] = byte(v)
	mem[addr+1] = byte(v >> 8)
	mem[addr+2] = byte(v >> 16)
	mem[addr+3] = byte(v >> 24)
	mem[addr+4] = byte(v >> 32)
	mem[addr+5] = byte(v >> 40)
	mem[addr+6] = byte(v >> 48)
	mem[addr+7] = byte(v >> 56)
}

// SimpleEnv is a self-contained Env for tests and standalone execution:
// flat memory, a static global map, and Go-function externs.
type SimpleEnv struct {
	Memory  []byte
	Globals map[string]uint64
	Externs map[string]func(args []uint64) (uint64, error)
}

// NewSimpleEnv allocates a SimpleEnv with memSize bytes of memory.
func NewSimpleEnv(memSize int) *SimpleEnv {
	return &SimpleEnv{
		Memory:  make([]byte, memSize),
		Globals: make(map[string]uint64),
		Externs: make(map[string]func(args []uint64) (uint64, error)),
	}
}

// Mem implements Env.
func (e *SimpleEnv) Mem() []byte { return e.Memory }

// GlobalAddr implements Env.
func (e *SimpleEnv) GlobalAddr(name string) (uint64, bool) {
	a, ok := e.Globals[name]
	return a, ok
}

// CallExtern implements Env.
func (e *SimpleEnv) CallExtern(sym string, args []uint64) (uint64, error) {
	fn, ok := e.Externs[sym]
	if !ok {
		return 0, fmt.Errorf("%w: extern %q", ErrUnresolved, sym)
	}
	return fn(args)
}

// LoadU64 reads an 8-byte value from env memory (test helper).
func (e *SimpleEnv) LoadU64(addr uint64) uint64 { return loadU64(e.Memory, addr) }

// StoreU64 writes an 8-byte value into env memory (test helper).
func (e *SimpleEnv) StoreU64(addr, v uint64) { storeU64(e.Memory, addr, v) }

// LoadMem and StoreMem expose checked typed access for other packages.
func LoadMem(mem []byte, addr uint64, ty Type) (uint64, error) { return loadMem(mem, addr, ty) }

// StoreMem is the checked typed store counterpart of LoadMem.
func StoreMem(mem []byte, addr uint64, ty Type, v uint64) error { return storeMem(mem, addr, ty, v) }

// F64Bits exposes the float bit conversion for other packages.
func F64Bits(f float64) uint64 { return f64bits(f) }

// F64FromBits is the inverse of F64Bits.
func F64FromBits(b uint64) float64 { return f64frombits(b) }
