package ifunc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCachedFrameIs26Bytes(t *testing.T) {
	// §V-A: "The cached ifunc message is just 26B" (1-byte payload).
	if got := TruncatedLen(1); got != 26 {
		t.Fatalf("cached frame = %d bytes, want 26", got)
	}
}

func TestBuildParseFullFrame(t *testing.T) {
	h := Header{Kind: KindBitcode, NameHash: NameHash("tsi"), Entry: 1,
		SrcNode: 3, Seq: 99}
	payload := []byte{1, 2, 3}
	code := []byte("fat bitcode archive bytes")
	frame := Build(h, payload, code)
	if len(frame) != FullLen(len(payload), len(code)) {
		t.Fatalf("frame = %d bytes, want %d", len(frame), FullLen(len(payload), len(code)))
	}
	f, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindBitcode || f.NameHash != NameHash("tsi") || f.Entry != 1 ||
		f.SrcNode != 3 || f.Seq != 99 {
		t.Fatalf("header round trip: %+v", f.Header)
	}
	if string(f.Payload) != string(payload) || string(f.Code) != string(code) {
		t.Fatal("payload/code round trip failed")
	}
}

func TestParseTruncatedFrame(t *testing.T) {
	h := Header{Kind: KindBinary, NameHash: 42}
	frame := Build(h, []byte{7}, []byte("code"))
	// The caching protocol sends only the truncated prefix; the frame
	// itself is never modified.
	trunc := frame[:TruncatedLen(1)]
	f, err := Parse(trunc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Code != nil {
		t.Fatal("truncated frame decoded with code")
	}
	if len(f.Payload) != 1 || f.Payload[0] != 7 {
		t.Fatalf("payload %v", f.Payload)
	}
	// The full frame still parses with code intact (resend to a third
	// process).
	f2, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Code) != "code" {
		t.Fatal("full frame lost code after truncated view")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	h := Header{Kind: KindBitcode, NameHash: 1}
	frame := Build(h, []byte{1, 2}, []byte("xyz"))

	bad := append([]byte(nil), frame...)
	bad[0] = 0 // start magic
	if _, err := Parse(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad start magic: %v", err)
	}

	bad = append([]byte(nil), frame...)
	bad[HeaderLen+2] = 0 // separator magic
	if _, err := Parse(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad separator: %v", err)
	}

	bad = append([]byte(nil), frame...)
	bad[len(bad)-1] = 0 // trailer magic
	if _, err := Parse(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad trailer: %v", err)
	}

	bad = append([]byte(nil), frame...)
	bad[1] = 77 // kind
	if _, err := Parse(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad kind: %v", err)
	}

	if _, err := Parse(frame[:10]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short frame: %v", err)
	}
}

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		Parse(b) // must not panic
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	check := func(hash uint64, entry uint16, src uint16, seq uint32, payload, code []byte) bool {
		if len(payload) > 1<<16 || len(code) > 1<<16 {
			return true
		}
		h := Header{Kind: KindBitcode, NameHash: hash, Entry: entry, SrcNode: src, Seq: seq}
		f, err := Parse(Build(h, payload, code))
		if err != nil {
			return false
		}
		if f.NameHash != hash || f.Entry != entry || f.SrcNode != src || f.Seq != seq {
			return false
		}
		if len(f.Payload) != len(payload) || len(f.Code) != len(code) {
			return false
		}
		for i := range payload {
			if f.Payload[i] != payload[i] {
				return false
			}
		}
		for i := range code {
			if f.Code[i] != code[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNameHashStable(t *testing.T) {
	if NameHash("tsi") != NameHash("tsi") {
		t.Fatal("hash not stable")
	}
	if NameHash("tsi") == NameHash("dapc") {
		t.Fatal("distinct names collide")
	}
}

func TestRegistry(t *testing.T) {
	rg := NewRegistry()
	if _, ok := rg.Get(1); ok {
		t.Fatal("empty registry returned a registration")
	}
	r := &Registration{Name: "x", Hash: 1, EntryNames: []string{"main", "aux"}}
	rg.Put(r)
	got, ok := rg.Get(1)
	if !ok || got != r || rg.Len() != 1 {
		t.Fatal("registry lookup failed")
	}
	if n, err := r.EntryName(1); err != nil || n != "aux" {
		t.Fatalf("entry name: %q %v", n, err)
	}
	if _, err := r.EntryName(5); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	// Replacement.
	r2 := &Registration{Name: "y", Hash: 1}
	rg.Put(r2)
	if got, _ := rg.Get(1); got != r2 {
		t.Fatal("replacement failed")
	}
}

func TestSentCache(t *testing.T) {
	c := NewSentCache()
	if c.Seen(1, 100) {
		t.Fatal("fresh cache reports seen")
	}
	c.Mark(1, 100)
	if !c.Seen(1, 100) {
		t.Fatal("marked entry not seen")
	}
	// Different endpoint, same type: unseen (per-endpoint tracking).
	if c.Seen(2, 100) {
		t.Fatal("endpoint 2 inherited endpoint 1's cache entry")
	}
	// Different type, same endpoint: unseen.
	if c.Seen(1, 200) {
		t.Fatal("type 200 inherited type 100's entry")
	}
	if c.Hits != 1 || c.Misses != 3 {
		t.Fatalf("stats: %d hits, %d misses", c.Hits, c.Misses)
	}
	// Forget invalidates everywhere.
	c.Mark(2, 100)
	c.Forget(100)
	if c.Seen(1, 100) || c.Seen(2, 100) {
		t.Fatal("forget did not invalidate")
	}
}

func TestHashRefFrameRoundTrip(t *testing.T) {
	h := Header{Kind: KindBitcode, NameHash: NameHash("tsi"), Entry: 2,
		SrcNode: 7, Seq: 11}
	payload := []byte{9}
	code := []byte("fat bitcode archive bytes")
	ch := ContentHash(code)
	frame := AppendHashRef(nil, h, payload, ch, len(code))
	if len(frame) != HashRefLen(len(payload)) {
		t.Fatalf("frame = %d bytes, want %d", len(frame), HashRefLen(len(payload)))
	}
	// The hash-ref form costs 17 bytes over the 26-byte cached frame —
	// still independent of code size.
	if got := HashRefLen(1); got != 43 {
		t.Fatalf("hash-ref frame = %d bytes, want 43", got)
	}
	f, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HashRef || f.CodeHash != ch || int(f.CodeLen) != len(code) {
		t.Fatalf("hash-ref round trip: %+v", f)
	}
	if f.Code != nil {
		t.Fatal("hash-ref frame decoded with inline code")
	}
	if f.Entry != 2 || f.Seq != 11 || string(f.Payload) != string(payload) {
		t.Fatalf("header/payload round trip: %+v", f)
	}
	// Re-parsing a truncated frame into the same Frame clears the
	// hash-ref fields (pooled Frame reuse).
	trunc := AppendTruncated(nil, h, payload)
	if err := f.ParseInto(trunc); err != nil {
		t.Fatal(err)
	}
	if f.HashRef || f.CodeHash != 0 || f.CodeLen != 0 {
		t.Fatalf("stale hash-ref state after reuse: %+v", f)
	}
}

func TestHashRefFrameRejectsCorruption(t *testing.T) {
	h := Header{Kind: KindBitcode, NameHash: 1}
	frame := AppendHashRef(nil, h, []byte{1}, 0xdeadbeef, 100)

	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] = 0 // trailer magic
	if _, err := Parse(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad trailer: %v", err)
	}

	// Truncated mid-hash: the sentinel promises 13 more bytes.
	if _, err := Parse(frame[:len(frame)-4]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short hash-ref: %v", err)
	}

	// Extra trailing byte.
	if _, err := Parse(append(append([]byte(nil), frame...), 0x5A)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized hash-ref: %v", err)
	}
}
