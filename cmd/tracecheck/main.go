// tracecheck validates a Chrome trace-event JSON file produced by
// `paperbench -trace` (or Trace.WriteChrome): the file must parse, use
// the expected schema (process/thread metadata naming node tracks,
// complete "X" spans carrying ts+dur, instant "i" events), and be
// non-trivial. It validates the schema, not the bytes — the byte-level
// determinism guarantee lives in the trace determinism test suite.
//
// Usage: tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

type traceDoc struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []event `json:"traceEvents"`
}

type event struct {
	Ph   string         `json:"ph"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Name string         `json:"name"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) != 2 {
		log.Fatal("usage: tracecheck trace.json")
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		log.Fatalf("not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		log.Fatalf("displayTimeUnit = %q, want \"ns\"", doc.DisplayTimeUnit)
	}
	var metas, spans, instants int
	for i, ev := range doc.TraceEvents {
		if ev.Pid == nil {
			log.Fatalf("event %d (%q): missing pid", i, ev.Name)
		}
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				log.Fatalf("event %d: unexpected metadata name %q", i, ev.Name)
			}
			if _, ok := ev.Args["name"]; !ok {
				log.Fatalf("event %d: metadata without args.name", i)
			}
		case "X":
			spans++
			if ev.Ts == nil || ev.Dur == nil {
				log.Fatalf("event %d (%q): complete event missing ts/dur", i, ev.Name)
			}
		case "i":
			instants++
			if ev.Ts == nil {
				log.Fatalf("event %d (%q): instant missing ts", i, ev.Name)
			}
		default:
			log.Fatalf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if metas == 0 || spans == 0 || instants == 0 {
		log.Fatalf("trace is trivial: %d metadata, %d spans, %d instants", metas, spans, instants)
	}
	fmt.Printf("ok: %d events (%d metadata, %d spans, %d instants)\n",
		len(doc.TraceEvents), metas, spans, instants)
}
