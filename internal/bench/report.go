package bench

import (
	"fmt"
	"strings"

	"threechains/internal/isa"
	"threechains/internal/testbed"
)

// This file renders results in the paper's table/figure layouts and
// defines the exact experiment grid of §V (one function per table and
// figure). cmd/paperbench drives these; bench_test.go runs the same cells
// as Go benchmarks.

// FormatBreakdownTable renders a Table I/II/III-style overhead breakdown.
func FormatBreakdownTable(title string, rows []TSIResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-14s %-18s %-18s %-18s\n", "Stage", "Active Message", "Uncached Bitcode", "Cached Bitcode")
	pick := func(m TSIMode) *TSIResult {
		for i := range rows {
			if rows[i].Mode == m {
				return &rows[i]
			}
		}
		return nil
	}
	am, unc, cac := pick(TSIActiveMessage), pick(TSIBitcodeUncached), pick(TSIBitcodeCached)
	if am == nil || unc == nil || cac == nil {
		return title + ": incomplete rows\n"
	}
	fmt.Fprintf(&sb, "%-14s %-18s %-18s %-18s\n", "Lookup+Exec",
		fmt.Sprintf("%.2f µs", am.LookupExecUS),
		fmt.Sprintf("%.2f µs", unc.LookupExecUS),
		fmt.Sprintf("%.2f µs", cac.LookupExecUS))
	fmt.Fprintf(&sb, "%-14s %-18s %-18s %-18s\n", "JIT",
		"N/A", fmt.Sprintf("(%.2f ms)", unc.JITms), "N/A")
	fmt.Fprintf(&sb, "%-14s %-18s %-18s %-18s\n", "Transmission",
		fmt.Sprintf("%.2f µs", am.TransUS),
		fmt.Sprintf("%.2f µs", unc.TransUS),
		fmt.Sprintf("%.2f µs", cac.TransUS))
	fmt.Fprintf(&sb, "%-14s %-18s %-18s %-18s\n", "Total",
		fmt.Sprintf("%.2f µs", am.LatencyUS),
		fmt.Sprintf("%.2f µs", unc.LatencyUS),
		fmt.Sprintf("%.2f µs", cac.LatencyUS))
	fmt.Fprintf(&sb, "(message bytes: AM %d, uncached %d, cached %d)\n",
		am.MsgBytes, unc.MsgBytes, cac.MsgBytes)
	return sb.String()
}

// FormatRateTable renders a Table IV/V/VI-style latency + message-rate
// comparison with speedup rows.
func FormatRateTable(title string, rows []TSIResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-18s %-12s %-10s %-18s %-10s\n", "Method", "Latency", "Speedup", "Message Rate", "Speedup")
	pick := func(m TSIMode) *TSIResult {
		for i := range rows {
			if rows[i].Mode == m {
				return &rows[i]
			}
		}
		return nil
	}
	am, unc, cac := pick(TSIActiveMessage), pick(TSIBitcodeUncached), pick(TSIBitcodeCached)
	if am == nil || unc == nil || cac == nil {
		return title + ": incomplete rows\n"
	}
	pair := func(a, b *TSIResult) {
		fmt.Fprintf(&sb, "%-18s %-12s %-10s %-18s %-10s\n", a.Mode,
			fmt.Sprintf("%.2f µs", a.LatencyUS),
			fmt.Sprintf("%+.2f%%", 100*(a.LatencyUS-b.LatencyUS)/b.LatencyUS),
			fmt.Sprintf("%s msg/sec", comma(int64(a.RateMsgSec))),
			fmt.Sprintf("%+.2f%%", 100*(b.RateMsgSec-a.RateMsgSec)/a.RateMsgSec))
		fmt.Fprintf(&sb, "%-18s %-12s %-10s %-18s %-10s\n", b.Mode,
			fmt.Sprintf("%.2f µs", b.LatencyUS), "",
			fmt.Sprintf("%s msg/sec", comma(int64(b.RateMsgSec))), "")
	}
	pair(am, cac)
	pair(unc, cac)
	return sb.String()
}

// comma formats an integer with thousands separators.
func comma(v int64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

// Series is one plotted line of a figure.
type Series struct {
	Label string
	X     []int
	Y     []float64 // chases/second
}

// FormatFigure renders figure data as an aligned text table, including
// the "Get - Bitcode % Diff" secondary series the paper plots.
func FormatFigure(title, xlabel string, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-8s", xlabel)
	for _, s := range series {
		fmt.Fprintf(&sb, " %22s", s.Label)
	}
	var get, bitcode *Series
	for i := range series {
		switch series[i].Label {
		case "Get":
			get = &series[i]
		case "Cached Bitcode":
			bitcode = &series[i]
		}
	}
	if get != nil && bitcode != nil {
		fmt.Fprintf(&sb, " %22s", "Get-Bitcode %Diff")
	}
	sb.WriteByte('\n')
	if len(series) == 0 {
		return sb.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&sb, "%-8d", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(&sb, " %22.1f", s.Y[i])
		}
		if get != nil && bitcode != nil {
			diff := 100 * (bitcode.Y[i] - get.Y[i]) / get.Y[i]
			fmt.Fprintf(&sb, " %+21.1f%%", diff)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// --- Experiment grid: one function per paper table/figure. -------------

// TableI is the Ookami TSI overhead breakdown.
func TableI() ([]TSIResult, error) { return TSITable(testbed.Ookami()) }

// TableII is the Thor BF2 TSI overhead breakdown.
func TableII() ([]TSIResult, error) { return TSITable(testbed.ThorBF2()) }

// TableIII is the Thor Xeon TSI overhead breakdown.
func TableIII() ([]TSIResult, error) { return TSITable(testbed.ThorXeon()) }

// fig constructs the standard DAPC config for a figure.
func fig(p testbed.Profile, clientXeon bool, servers int) DAPCConfig {
	cfg := DAPCConfig{Profile: p, Servers: servers}
	if clientXeon {
		cfg.ClientMarch = isa.XeonE5
	}
	return cfg
}

// figModes returns the line set of the C-path depth figures.
func figModes() []DAPCMode {
	return []DAPCMode{DAPCActiveMessage, DAPCGet, DAPCBitcode}
}

// runLines evaluates modes over a sweep function.
func runLines(cfg DAPCConfig, modes []DAPCMode, xs []int, depthSweep bool) ([]Series, error) {
	var out []Series
	for _, m := range modes {
		var rs []DAPCResult
		var err error
		if depthSweep {
			rs, err = DepthSweep(cfg, m, xs)
		} else {
			rs, err = ServerSweep(cfg, m, xs)
		}
		if err != nil {
			return nil, err
		}
		s := Series{Label: m.String(), X: xs}
		for _, r := range rs {
			s.Y = append(s.Y, r.RateChasesSec)
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig5 is the Thor 32-server C/C++ depth sweep (Xeon client, BF2
// servers).
func Fig5(depths []int) ([]Series, error) {
	return runLines(fig(testbed.ThorMixed(), true, 32), figModes(), depths, true)
}

// Fig6 is the Ookami 64-server C/C++ depth sweep, including the cached
// binary line (homogeneous aarch64 cluster).
func Fig6(depths []int) ([]Series, error) {
	modes := []DAPCMode{DAPCActiveMessage, DAPCGet, DAPCBinary, DAPCBitcode}
	return runLines(fig(testbed.Ookami(), false, 64), modes, depths, true)
}

// Fig7 is the Thor 16-server all-Xeon depth sweep.
func Fig7(depths []int) ([]Series, error) {
	return runLines(fig(testbed.ThorXeon(), true, 16), figModes(), depths, true)
}

// Fig8 is the Thor 32-server Julia depth sweep: AM, Get, Julia-generated
// bitcode and C-generated bitcode (both driven from the client).
func Fig8(depths []int) ([]Series, error) {
	cfg := fig(testbed.ThorMixed(), true, 32)
	modes := []DAPCMode{DAPCActiveMessage, DAPCGet, DAPCJulia, DAPCBitcode}
	return runLines(cfg, modes, depths, true)
}

// Fig9 is the Thor BF2 scaling sweep at depth 4096.
func Fig9(servers []int) ([]Series, error) {
	cfg := fig(testbed.ThorMixed(), true, 0)
	cfg.Depth = 4096
	return runLines(cfg, figModes(), servers, false)
}

// Fig10 is the Ookami scaling sweep at depth 4096 (incl. cached binary).
func Fig10(servers []int) ([]Series, error) {
	cfg := fig(testbed.Ookami(), false, 0)
	cfg.Depth = 4096
	modes := []DAPCMode{DAPCActiveMessage, DAPCGet, DAPCBinary, DAPCBitcode}
	return runLines(cfg, modes, servers, false)
}

// Fig11 is the Thor Xeon scaling sweep at depth 4096.
func Fig11(servers []int) ([]Series, error) {
	cfg := fig(testbed.ThorXeon(), true, 0)
	cfg.Depth = 4096
	return runLines(cfg, figModes(), servers, false)
}

// Fig12 is the Thor Julia scaling sweep at depth 4096.
func Fig12(servers []int) ([]Series, error) {
	cfg := fig(testbed.ThorMixed(), true, 0)
	cfg.Depth = 4096
	modes := []DAPCMode{DAPCActiveMessage, DAPCGet, DAPCJulia, DAPCBitcode}
	return runLines(cfg, modes, servers, false)
}
