// Package ucx is a UCP-flavoured communication API over the simulated
// fabric — the stand-in for OpenUCX in the paper. It provides contexts,
// workers, endpoints, memory registration with remote keys, one-sided PUT
// and GET, two-sided Active Messages with a registered handler table, and
// the ifunc delivery hook the Three-Chains runtime plugs into ("the
// Three-Chains API is implemented as an extension of the UCP interface",
// §III-A).
//
// Semantics follow UCP where it matters for the paper's evaluation:
//
//   - PUT and GET are one-sided: the target CPU is not involved, only its
//     NIC (fixed NICOverhead). GET is a request/response round trip.
//   - Active Messages are two-sided: delivery costs receiver CPU time
//     (RecvOverhead + a dispatch cost through the handler pointer table).
//   - ifunc messages are PUT-like into a polled message buffer: NIC
//     write, then the polling loop drains every queued frame on the
//     target CPU in one pickup (one IfuncPoll + RecvOverhead per frame),
//     amortizing the poll cost over message bursts.
//   - Completion is signalled through one-shot sim.Signals whose value is
//     a Status (OK or an error code), like ucs_status_t.
package ucx

import (
	"encoding/binary"
	"fmt"

	"threechains/internal/fabric"
	"threechains/internal/obs"
	"threechains/internal/sim"
)

// Status is the completion status of an operation (ucs_status_t).
type Status uint64

const (
	// OK means success.
	OK Status = iota
	// ErrAccess means an rkey validation or bounds failure.
	ErrAccess
	// ErrNoHandler means an AM id had no registered handler.
	ErrNoHandler
	// ErrRejected means the target refused the message (e.g. ifunc sink
	// not installed).
	ErrRejected
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case ErrAccess:
		return "ERR_ACCESS"
	case ErrNoHandler:
		return "ERR_NO_HANDLER"
	case ErrRejected:
		return "ERR_REJECTED"
	default:
		return fmt.Sprintf("ERR(%d)", uint64(s))
	}
}

// Context is a UCP context bound to one fabric.
type Context struct {
	Net *fabric.Network
}

// NewContext wraps a fabric network.
func NewContext(net *fabric.Network) *Context { return &Context{Net: net} }

// AMHandler consumes an active message on the target worker.
// header is the sender-chosen 64-bit immediate; data is the payload.
type AMHandler func(src *Endpoint, header uint64, data []byte)

// FrameRelease returns a frame buffer to its sender-side pool once the
// receiver is completely done with the bytes (payload staged, code
// copied). In this single-process simulation the release is a direct
// call back into the sender's runtime; a real transport would recycle
// its registered send buffers at the matching completion event.
type FrameRelease func(frame []byte)

// IfuncDelivery is one ifunc frame handed to the polling drain: the raw
// frame bytes plus the originating worker/node id.
type IfuncDelivery struct {
	SrcNode int
	Frame   []byte

	// Release, when non-nil, must be called by the drain consumer once
	// Frame's bytes are dead (payloads staged into node memory, code
	// sections copied): the buffer returns to the sender's pool. Not
	// calling it is safe — the buffer is simply garbage collected — but
	// defeats the zero-allocation send path.
	Release FrameRelease

	// done fires with a Status once the frame has been handed to the
	// drain (transport-level completion, owned by the worker). Quiet
	// sends (SendIfuncQuiet) leave it nil: no completion is observed, so
	// no signal is allocated.
	done *sim.Signal
}

// IfuncDrain consumes a batch of delivered ifunc frames — every frame
// the polling loop found queued for this node on one poll (installed by
// the Three-Chains runtime). Draining the whole queue per poll is what
// amortizes the fixed poll cost over message bursts: the batch is
// charged one IfuncPoll plus a per-frame pickup cost (RecvOverhead)
// before the drain is invoked, instead of IfuncPoll per frame.
//
// The batch slice is only valid for the duration of the call: the worker
// may recycle its backing array once the drain returns (the
// allocation-free steady state of the polling loop). Consumers that
// defer work must copy the IfuncDelivery values they retain — the frame
// bytes themselves stay valid until the consumer invokes the delivery's
// Release hook.
type IfuncDrain func(batch []IfuncDelivery)

// memRegion is a registered memory window.
type memRegion struct {
	base, size uint64
}

// RKey is a packed remote key: it names a registered window on a worker
// and travels out of band to peers (like ucp_rkey_pack output).
type RKey struct {
	WorkerID int
	KeyID    uint32
	Base     uint64
	Size     uint64
}

// Worker is a UCP worker: the per-process communication state.
type Worker struct {
	Ctx  *Context
	Node *fabric.Node

	amHandlers map[uint32]AMHandler
	ifuncDrain IfuncDrain
	regions    map[uint32]memRegion
	nextKey    uint32

	// ifuncQ buffers frames written into the node's message buffer by
	// the NIC until the polling loop picks them up; pollPending is set
	// while a poll wakeup is scheduled on the node core. qFree recycles
	// the backing arrays of fully drained queues once their batch has
	// been consumed, keeping the steady-state polling loop
	// allocation-free.
	ifuncQ      []IfuncDelivery
	qFree       [][]IfuncDelivery
	pollPending bool
	// drainFn/consumeFn memoize the drainIfuncs/consumeBatch method
	// values so neither scheduling a poll wakeup nor handing a batch to
	// the drain allocates a fresh closure. pendBatch/pendFull carry the
	// picked-up batch from drainIfuncs to consumeBatch; the node core
	// serializes the two, so at most one batch is ever in flight.
	drainFn   func()
	consumeFn func()
	pendBatch []IfuncDelivery
	pendFull  bool

	// AMDispatch is the extra CPU cost of dispatching an AM through the
	// handler pointer table (calibrated per testbed).
	AMDispatch sim.Time
	// IfuncPoll is the fixed CPU cost of one ifunc poll: noticing queued
	// messages and entering the pickup loop (calibrated per testbed).
	// Each drained frame additionally costs the fabric's RecvOverhead —
	// so a single-frame drain charges exactly what the paper's
	// one-message-per-poll runtime charged, and every further frame in
	// the same drain amortizes the poll.
	IfuncPoll sim.Time
	// MaxDrain caps how many frames one poll picks up; 0 means drain the
	// whole queue (the default batched pipeline). The paper-fidelity
	// benchmarks pin it to 1 to reproduce the §V one-message-per-poll
	// methodology.
	MaxDrain int

	// Stats counts ifunc polling activity.
	Stats WorkerStats
}

// WorkerStats aggregates polling-loop activity.
type WorkerStats struct {
	// IfuncPolls counts poll pickups (drains) that found frames.
	IfuncPolls uint64
	// IfuncFrames counts frames handed to the drain.
	IfuncFrames uint64
}

// NewWorker creates a worker on the node.
func (c *Context) NewWorker(n *fabric.Node) *Worker {
	return &Worker{
		Ctx:        c,
		Node:       n,
		amHandlers: make(map[uint32]AMHandler),
		regions:    make(map[uint32]memRegion),
	}
}

// SetAMHandler registers (or replaces) the handler for an AM id — the
// predeployed function table of the Active Message baseline.
func (w *Worker) SetAMHandler(id uint32, h AMHandler) { w.amHandlers[id] = h }

// SetIfuncDrain installs the ifunc batch consumer (the Three-Chains
// polling function). Each poll hands the drain every frame queued for
// the node (bounded by MaxDrain), already charged for pickup.
func (w *Worker) SetIfuncDrain(d IfuncDrain) { w.ifuncDrain = d }

// RegisterMem exposes [base, base+size) for remote one-sided access and
// returns the packed key.
func (w *Worker) RegisterMem(base, size uint64) RKey {
	w.nextKey++
	w.regions[w.nextKey] = memRegion{base: base, size: size}
	return RKey{WorkerID: w.Node.ID, KeyID: w.nextKey, Base: base, Size: size}
}

// checkAccess validates a one-sided access against a registered window.
func (w *Worker) checkAccess(key RKey, addr uint64, size int) bool {
	r, ok := w.regions[key.KeyID]
	if !ok {
		return false
	}
	return addr >= r.base && addr+uint64(size) <= r.base+r.size
}

// Endpoint connects a local worker to a remote worker (reliable,
// ordered).
type Endpoint struct {
	W    *Worker
	Peer *Worker

	// onNIC/hopFn memoize the ifunc arrival pipeline: one handler pair
	// per endpoint instead of two closures per message. Per-send state
	// (the completion signal and the frame-release hook) rides on the
	// pooled fabric.Message instead.
	onNIC fabric.Handler
	hopFn func(any)
}

// Connect creates an endpoint to peer.
func (w *Worker) Connect(peer *Worker) *Endpoint {
	ep := &Endpoint{W: w, Peer: peer}
	ep.onNIC = ep.ifuncArrive
	ep.hopFn = ep.ifuncEnqueue
	return ep
}

// Protocol header sizes model UCP's wire framing. AMHeaderBytes is sized
// so the paper's TSI Active Message (1-byte payload) comes out at 33
// bytes on the wire, matching §V-A; ifunc frames carry their own header
// (package ifunc) and are sent verbatim.
const (
	PutHeaderBytes = 24 // put: remote addr + rkey + length
	GetReqBytes    = 32 // get request descriptor
	GetRespBytes   = 16 // get response framing around the data
	AMHeaderBytes  = 32 // am id + immediate + ucp framing
)

// Put writes data into remote memory at addr (one-sided). The returned
// signal fires with a Status when the remote write has completed.
func (ep *Endpoint) Put(data []byte, addr uint64, key RKey) *sim.Signal {
	done := ep.W.Node.Eng().NewSignal()
	wire := make([]byte, PutHeaderBytes+len(data))
	copy(wire[PutHeaderBytes:], data)
	params := ep.W.Ctx.Net.Params
	ep.W.Node.Send(ep.Peer.Node, wire, nil, func(msg *fabric.Message) {
		// NIC-side write after NIC processing; no target CPU. The pooled
		// message dies with this handler: capture the payload slice.
		payload := msg.Data[PutHeaderBytes:]
		msg.Dst.Eng().After(params.NICOverhead, func() {
			if !ep.Peer.checkAccess(key, addr, len(payload)) {
				done.Fire(uint64(ErrAccess))
				return
			}
			if err := ep.Peer.Node.WriteMem(addr, payload); err != nil {
				done.Fire(uint64(ErrAccess))
				return
			}
			done.Fire(uint64(OK))
		})
	})
	return done
}

// PutSeg is one segment of a vectored PutV: Off is the byte offset from
// the operation's base address, Data the bytes to write there.
type PutSeg struct {
	Off  int
	Data []byte
}

// PutSegHeaderBytes is the per-segment wire descriptor of PutV: a
// 64-bit offset and a 32-bit length ahead of the segment's bytes.
const PutSegHeaderBytes = 12

// PutVWireBytes returns the wire payload of a vectored put carrying the
// given segments (excluding the fixed PutHeaderBytes) — the quantity
// the placement cost model prices and the runtime compares against a
// whole-region Put when deciding whether a delta is worth it.
func PutVWireBytes(segs []PutSeg) int {
	n := 0
	for _, s := range segs {
		n += PutSegHeaderBytes + len(s.Data)
	}
	return n
}

// PutV writes several discontiguous segments into remote memory at
// addr+seg.Off in one one-sided operation: a single message carries the
// PUT header plus a (offset, length, bytes) descriptor per segment, and
// the target NIC scatters the writes — one SendOverhead and one
// NICOverhead regardless of segment count, which is what makes delta
// write-back cheaper than a whole-region Put whenever the dirty bytes
// (plus descriptors) undercut the region size. The returned signal
// fires with a Status when every segment has been written (ErrAccess if
// any segment fails validation; earlier segments may already be
// applied, like a partially completed RDMA scatter).
func (ep *Endpoint) PutV(segs []PutSeg, addr uint64, key RKey) *sim.Signal {
	done := ep.W.Node.Eng().NewSignal()
	wire := make([]byte, PutHeaderBytes+PutVWireBytes(segs))
	off := PutHeaderBytes
	for _, s := range segs {
		binary.LittleEndian.PutUint64(wire[off:], uint64(s.Off))
		binary.LittleEndian.PutUint32(wire[off+8:], uint32(len(s.Data)))
		copy(wire[off+PutSegHeaderBytes:], s.Data)
		off += PutSegHeaderBytes + len(s.Data)
	}
	params := ep.W.Ctx.Net.Params
	ep.W.Node.Send(ep.Peer.Node, wire, nil, func(msg *fabric.Message) {
		// NIC-side scatter after NIC processing; no target CPU. The pooled
		// message dies with this handler: capture the payload slice.
		payload := msg.Data[PutHeaderBytes:]
		msg.Dst.Eng().After(params.NICOverhead, func() {
			p := payload
			for len(p) >= PutSegHeaderBytes {
				segOff := binary.LittleEndian.Uint64(p)
				segLen := int(binary.LittleEndian.Uint32(p[8:]))
				if PutSegHeaderBytes+segLen > len(p) {
					done.Fire(uint64(ErrAccess))
					return
				}
				data := p[PutSegHeaderBytes : PutSegHeaderBytes+segLen]
				if !ep.Peer.checkAccess(key, addr+segOff, len(data)) {
					done.Fire(uint64(ErrAccess))
					return
				}
				if err := ep.Peer.Node.WriteMem(addr+segOff, data); err != nil {
					done.Fire(uint64(ErrAccess))
					return
				}
				p = p[PutSegHeaderBytes+segLen:]
			}
			done.Fire(uint64(OK))
		})
	})
	return done
}

// GetOp is an in-flight GET: Done fires with a Status; Data holds the
// fetched bytes on success.
type GetOp struct {
	Done *sim.Signal
	Data []byte
}

// Get fetches size bytes from remote memory at addr (one-sided
// request/response through the target NIC).
func (ep *Endpoint) Get(addr uint64, size int, key RKey) *GetOp {
	params := ep.W.Ctx.Net.Params
	op := &GetOp{Done: ep.W.Node.Eng().NewSignal()}
	req := make([]byte, GetReqBytes)
	ep.W.Node.Send(ep.Peer.Node, req, nil, func(msg *fabric.Message) {
		msg.Dst.Eng().After(params.NICOverhead, func() {
			if !ep.Peer.checkAccess(key, addr, size) {
				// Error response travels back as a small message.
				ep.Peer.Node.Send(ep.W.Node, make([]byte, 16), nil, func(*fabric.Message) {
					op.Done.Fire(uint64(ErrAccess))
				})
				return
			}
			data, err := ep.Peer.Node.ReadMem(addr, size)
			if err != nil {
				ep.Peer.Node.Send(ep.W.Node, make([]byte, 16), nil, func(*fabric.Message) {
					op.Done.Fire(uint64(ErrAccess))
				})
				return
			}
			resp := make([]byte, GetRespBytes+len(data))
			copy(resp[GetRespBytes:], data)
			ep.Peer.Node.Send(ep.W.Node, resp, nil, func(m *fabric.Message) {
				// RDMA READ completion: response NIC processing plus the
				// initiator's CQ poll — the reason READ round trips cost
				// more than twice a WRITE's one-way latency. The pooled
				// message dies with this handler: capture the data slice.
				fetched := m.Data[GetRespBytes:]
				m.Dst.Eng().After(params.NICOverhead, func() {
					ep.W.Node.ExecCPU(params.RecvOverhead/2, func() {
						op.Data = fetched
						op.Done.Fire(uint64(OK))
					})
				})
			})
		})
	})
	return op
}

// GetSeg is one segment of a vectored GetV request: Off is the byte
// offset from the operation's base address, Len the byte count to fetch.
type GetSeg struct {
	Off, Len int
}

// GetSegHeaderBytes is the per-segment wire descriptor of GetV — a
// 64-bit offset and a 32-bit length, the exact mirror of PutV's
// descriptor. It appears twice per segment on the wire: once in the
// request (which chunks to read) and once framing the response data
// (which bytes these are).
const GetSegHeaderBytes = 12

// GetVWireBytes returns the response payload of a vectored get carrying
// the given segments (excluding the fixed GetRespBytes): descriptor plus
// data per segment — the quantity the region cache compares against a
// whole-region Get when deciding whether a chunk delta is worth the
// framing, and the quantity the placement cost model prices.
func GetVWireBytes(segs []GetSeg) int {
	n := 0
	for _, s := range segs {
		n += GetSegHeaderBytes + s.Len
	}
	return n
}

// GetVOp is an in-flight vectored GET: Done fires with a Status; Segs
// holds the fetched segments (offset + bytes, in request order) on
// success, ready to scatter into the caller's staged copy.
type GetVOp struct {
	Done *sim.Signal
	Segs []PutSeg
}

// GetV fetches several discontiguous segments from remote memory at
// addr+seg.Off in one one-sided request/response round trip: the request
// carries a 12-byte descriptor per segment, the target NIC gathers the
// reads, and the response frames each segment with the same descriptor —
// one round trip regardless of segment count, which is what makes a
// chunk-granular re-pull cheaper than a whole-region Get whenever the
// stale bytes (plus descriptors) undercut the region size. Fails as a
// unit (ErrAccess) if any segment misses the registered window.
func (ep *Endpoint) GetV(addr uint64, segs []GetSeg, key RKey) *GetVOp {
	params := ep.W.Ctx.Net.Params
	op := &GetVOp{Done: ep.W.Node.Eng().NewSignal()}
	req := make([]byte, GetReqBytes+GetSegHeaderBytes*len(segs))
	off := GetReqBytes
	for _, s := range segs {
		binary.LittleEndian.PutUint64(req[off:], uint64(s.Off))
		binary.LittleEndian.PutUint32(req[off+8:], uint32(s.Len))
		off += GetSegHeaderBytes
	}
	ep.W.Node.Send(ep.Peer.Node, req, nil, func(msg *fabric.Message) {
		// The pooled message dies with this handler: capture the
		// descriptor slice.
		desc := msg.Data[GetReqBytes:]
		msg.Dst.Eng().After(params.NICOverhead, func() {
			respLen := GetRespBytes
			for p := desc; len(p) >= GetSegHeaderBytes; p = p[GetSegHeaderBytes:] {
				respLen += GetSegHeaderBytes + int(binary.LittleEndian.Uint32(p[8:]))
			}
			resp := make([]byte, respLen)
			w := resp[GetRespBytes:]
			for p := desc; len(p) >= GetSegHeaderBytes; p = p[GetSegHeaderBytes:] {
				segOff := binary.LittleEndian.Uint64(p)
				segLen := int(binary.LittleEndian.Uint32(p[8:]))
				if !ep.Peer.checkAccess(key, addr+segOff, segLen) {
					ep.Peer.Node.Send(ep.W.Node, make([]byte, 16), nil, func(*fabric.Message) {
						op.Done.Fire(uint64(ErrAccess))
					})
					return
				}
				data, err := ep.Peer.Node.ReadMem(addr+segOff, segLen)
				if err != nil {
					ep.Peer.Node.Send(ep.W.Node, make([]byte, 16), nil, func(*fabric.Message) {
						op.Done.Fire(uint64(ErrAccess))
					})
					return
				}
				copy(w, p[:GetSegHeaderBytes])
				copy(w[GetSegHeaderBytes:], data)
				w = w[GetSegHeaderBytes+segLen:]
			}
			ep.Peer.Node.Send(ep.W.Node, resp, nil, func(m *fabric.Message) {
				// Same completion shape as Get: response NIC processing
				// plus the initiator's CQ poll. The pooled message dies
				// with this handler: capture the payload slice.
				payload := m.Data[GetRespBytes:]
				m.Dst.Eng().After(params.NICOverhead, func() {
					ep.W.Node.ExecCPU(params.RecvOverhead/2, func() {
						for p := payload; len(p) >= GetSegHeaderBytes; {
							segOff := binary.LittleEndian.Uint64(p)
							segLen := int(binary.LittleEndian.Uint32(p[8:]))
							op.Segs = append(op.Segs, PutSeg{
								Off:  int(segOff),
								Data: p[GetSegHeaderBytes : GetSegHeaderBytes+segLen],
							})
							p = p[GetSegHeaderBytes+segLen:]
						}
						op.Done.Fire(uint64(OK))
					})
				})
			})
		})
	})
	return op
}

// SendAM delivers an active message to the peer's registered handler.
// The signal fires with a Status after the remote handler dispatch.
func (ep *Endpoint) SendAM(id uint32, header uint64, payload []byte) *sim.Signal {
	params := ep.W.Ctx.Net.Params
	done := ep.W.Node.Eng().NewSignal()
	wire := make([]byte, AMHeaderBytes+len(payload))
	copy(wire[AMHeaderBytes:], payload)
	src := ep
	ep.W.Node.Send(ep.Peer.Node, wire, nil, func(msg *fabric.Message) {
		// Two-sided: receiver CPU runs the dispatch + handler. The pooled
		// message dies with this handler: capture the payload slice.
		data := msg.Data[AMHeaderBytes:]
		ep.Peer.Node.ExecCPU(params.RecvOverhead+ep.Peer.AMDispatch, func() {
			h, ok := ep.Peer.amHandlers[id]
			if !ok {
				done.Fire(uint64(ErrNoHandler))
				return
			}
			back := ep.Peer.Connect(src.W)
			h(back, header, data)
			done.Fire(uint64(OK))
		})
	})
	return done
}

// SendIfunc delivers an ifunc message frame to the peer's polling loop:
// a NIC-level write into the message buffer, an enqueue, and a CPU-side
// poll that drains the queue (the paper's Figure 1 target-side flow,
// batched). The signal fires with a Status once the frame has been
// handed to the drain.
func (ep *Endpoint) SendIfunc(frame []byte) *sim.Signal {
	return ep.SendIfuncPooled(frame, nil)
}

// SendIfuncPooled is SendIfunc for senders that recycle frame buffers:
// release (which may be nil) is delivered alongside the frame and called
// by the drain consumer once the bytes are dead. The fabric does not
// copy message data, so the sender must not touch the buffer until then.
func (ep *Endpoint) SendIfuncPooled(frame []byte, release FrameRelease) *sim.Signal {
	done := ep.W.Node.Eng().NewSignal()
	ep.sendIfunc(frame, release, done)
	return done
}

// SendIfuncQuiet is SendIfuncPooled without a completion signal, for
// senders that never observe transport-level completion (the runtime's
// warm streaming path): two signal allocations (local + done) and their
// fire bookkeeping are skipped per message. Timing is identical.
func (ep *Endpoint) SendIfuncQuiet(frame []byte, release FrameRelease) {
	ep.sendIfunc(frame, release, nil)
}

func (ep *Endpoint) sendIfunc(frame []byte, release FrameRelease, done *sim.Signal) {
	// The per-send varying state (completion signal, release hook) rides
	// on the pooled message; the arrival pipeline is the endpoint's
	// memoized handler pair — nothing here allocates.
	ep.W.Node.SendCarrying(ep.Peer.Node, frame, nil, done, release, ep.onNIC)
}

// ifuncArrive is the NIC-arrival stage: it holds the message across the
// NIC processing delay and hands it to the enqueue stage.
func (ep *Endpoint) ifuncArrive(msg *fabric.Message) {
	msg.Retain()
	msg.Dst.Eng().AfterCall(ep.W.Ctx.Net.Params.NICOverhead, ep.hopFn, msg)
}

// ifuncEnqueue is the post-NIC stage: the frame enters the polled
// message buffer and the message returns to the fabric pool.
func (ep *Endpoint) ifuncEnqueue(a any) {
	msg := a.(*fabric.Message)
	done := msg.Sig
	if ep.Peer.ifuncDrain == nil {
		msg.Free()
		if done != nil {
			done.Fire(uint64(ErrRejected))
		}
		return
	}
	d := IfuncDelivery{SrcNode: msg.Src.ID, Frame: msg.Data, Release: FrameRelease(msg.Rel), done: done}
	msg.Free()
	ep.Peer.enqueueIfunc(d)
}

// enqueueIfunc appends a NIC-written frame to the message buffer and
// makes sure a poll wakeup is scheduled on the node core.
func (w *Worker) enqueueIfunc(d IfuncDelivery) {
	w.ifuncQ = append(w.ifuncQ, d)
	w.schedulePoll()
}

// schedulePoll arms the next poll pickup. The wakeup is a zero-cost CPU
// event: it lands when the core is next free, so frames that arrive
// while the core is busy accumulate and are drained together — the
// batching emerges from backpressure, exactly like a real polling loop
// that finds several messages after a long handler.
func (w *Worker) schedulePoll() {
	if w.pollPending || len(w.ifuncQ) == 0 {
		return
	}
	w.pollPending = true
	if w.drainFn == nil {
		w.drainFn = w.drainIfuncs
	}
	w.Node.ExecCPU(0, w.drainFn)
}

// drainIfuncs is the poll pickup: it takes every queued frame (bounded
// by MaxDrain), charges one IfuncPoll plus RecvOverhead per frame, and
// hands the batch to the drain.
func (w *Worker) drainIfuncs() {
	w.pollPending = false
	n := len(w.ifuncQ)
	if n == 0 {
		return
	}
	if w.MaxDrain > 0 && n > w.MaxDrain {
		n = w.MaxDrain
	}
	batch := w.ifuncQ[:n:n]
	full := n == len(w.ifuncQ)
	if full {
		// Full drain: hand over the backing array; the next arrival
		// starts from a recycled queue (or a fresh one).
		if k := len(w.qFree); k > 0 {
			w.ifuncQ = w.qFree[k-1][:0]
			w.qFree = w.qFree[:k-1]
		} else {
			w.ifuncQ = nil
		}
	} else {
		rest := make([]IfuncDelivery, len(w.ifuncQ)-n)
		copy(rest, w.ifuncQ[n:])
		w.ifuncQ = rest
	}
	w.Stats.IfuncPolls++
	w.Stats.IfuncFrames += uint64(n)
	cost := w.IfuncPoll + sim.Time(n)*w.Ctx.Net.Params.RecvOverhead
	if tr := w.Node.Trace; tr != nil {
		// The drain's core occupancy: ExecCPU queues behind whatever the
		// core is doing, so the span starts when the core frees up.
		tr.Span(obs.TrackCore, "drain", w.Node.CPUFreeAt(), cost).
			Arg("frames", uint64(n))
	}
	if w.pendBatch != nil {
		panic("ucx: overlapping ifunc batch consumption")
	}
	if w.consumeFn == nil {
		w.consumeFn = w.consumeBatch
	}
	w.pendBatch, w.pendFull = batch, full
	w.Node.ExecCPU(cost, w.consumeFn)
	// Frames beyond MaxDrain wait for the next poll, which starts after
	// this batch's pickup charge.
	w.schedulePoll()
}

// consumeBatch hands the picked-up batch to the installed drain and
// fires per-frame completions. It runs on the node core right after the
// pickup charge; the next poll is already queued behind it, so the
// single pending-batch slot can never be overwritten.
func (w *Worker) consumeBatch() {
	batch, full := w.pendBatch, w.pendFull
	w.pendBatch = nil
	w.ifuncDrain(batch)
	for i := range batch {
		if batch[i].done != nil {
			batch[i].done.Fire(uint64(OK))
		}
	}
	// Recycle only fully drained queues — such a batch owns its whole
	// backing array. (A partial batch is a prefix view of a larger
	// array; keeping it would pin the array and feed the GC.) Bound
	// the free list so a one-off storm cannot park memory forever.
	if full && len(w.qFree) < 4 {
		for i := range batch {
			batch[i] = IfuncDelivery{} // drop frame refs
		}
		w.qFree = append(w.qFree, batch[:0])
	}
}

// Flush returns a signal that fires when all previously posted operations
// from this worker have left the sender NIC (local flush semantics).
func (w *Worker) Flush() *sim.Signal {
	eng := w.Node.Eng()
	s := eng.NewSignal()
	free := w.Node.CPUFreeAt()
	if t := eng.Now(); free < t {
		free = t
	}
	eng.AtFire(free, s, uint64(OK))
	return s
}
