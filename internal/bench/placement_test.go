package bench

// Differential and acceptance tests for the placement planner at the
// cluster level: every policy produces bit-identical execution results,
// cost-model decisions are deterministic across runs and execution
// engines (virtual-time invariance extended to routed offloads), and on
// the mixed heterogeneous scenario the planner beats both static
// policies.

import (
	"testing"

	"threechains/internal/place"
	"threechains/internal/testbed"
)

// acceptanceScenario is the mixed-hetero workload of the default grid.
func acceptanceScenario() place.WorkloadParams {
	return PlacementScenarios()[0].Params
}

// TestPlacementPoliciesBitIdentical runs every scenario of the default
// grid under all three policies: identical result hashes are asserted
// inside PlacementSweep (it errors on divergence), so this test is the
// check that the whole grid actually completes and stays comparable.
func TestPlacementPoliciesBitIdentical(t *testing.T) {
	rows, err := PlacementSweep(testbed.ThorXeon(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	for _, r := range rows {
		for _, pt := range r.Points[1:] {
			if pt.ResultHash != r.Points[0].ResultHash {
				t.Errorf("%s: %s hash %s != %s hash %s", r.Scenario,
					pt.Policy, pt.ResultHash, r.Points[0].Policy, r.Points[0].ResultHash)
			}
		}
	}
}

// TestPlacementCostModelWins pins the acceptance criterion: on the
// mixed-hetero scenario (mixed payload/region sizes, asymmetric node
// speeds) the cost model achieves lower total virtual time than both
// static policies, with a genuinely mixed route choice.
func TestPlacementCostModelWins(t *testing.T) {
	p := testbed.ThorXeon()
	sc := PlacementScenarios()[:1]
	rows, err := PlacementSweep(p, sc)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	ship, pull, cost := r.Points[0].TotalUS, r.Points[1].TotalUS, r.Points[2].TotalUS
	if cost >= ship || cost >= pull {
		t.Fatalf("cost model %0.1fus does not beat ship %0.1fus and pull %0.1fus", cost, ship, pull)
	}
	cm := r.Points[2]
	if cm.ShipOps == 0 || cm.PullOps == 0 {
		t.Errorf("degenerate route mix: ship=%d pull=%d local=%d (a static policy in disguise)",
			cm.ShipOps, cm.PullOps, cm.LocalOps)
	}
	t.Logf("mixed-hetero: ship=%.0fus pull=%.0fus cost=%.0fus win=%.1f%% (routes s=%d p=%d l=%d)",
		ship, pull, cost, r.WinPct, cm.ShipOps, cm.PullOps, cm.LocalOps)
}

// TestPlacementDeterministicAcrossRunsAndEngines runs the cost-model
// policy on the acceptance scenario twice on the default engine and once
// per alternative engine: total virtual time, route mix and result hash
// must be identical everywhere — decisions consume only engine-invariant
// virtual-time state, so engine choice (host wall-clock) can never leak
// into placement.
func TestPlacementDeterministicAcrossRunsAndEngines(t *testing.T) {
	params := acceptanceScenario()
	type run struct {
		label string
		prof  testbed.Profile
	}
	base := testbed.ThorXeon()
	interp := testbed.ThorXeon()
	interp.Engine = "interp"
	closure := testbed.ThorXeon()
	closure.Engine = "closure"
	runs := []run{
		{"superblock-1", base},
		{"superblock-2", base},
		{"interp", interp},
		{"closure", closure},
	}
	total0, stats0, hash0, err := RunPlacementScenario(runs[0].prof, params, place.PolicyCostModel)
	if err != nil {
		t.Fatal(err)
	}
	for _, rn := range runs[1:] {
		total, stats, hash, err := RunPlacementScenario(rn.prof, params, place.PolicyCostModel)
		if err != nil {
			t.Fatalf("%s: %v", rn.label, err)
		}
		if total != total0 {
			t.Errorf("%s: total virtual time %v != %v", rn.label, total, total0)
		}
		if stats != stats0 {
			t.Errorf("%s: route stats %+v != %+v", rn.label, stats, stats0)
		}
		if hash != hash0 {
			t.Errorf("%s: result hash %016x != %016x", rn.label, hash, hash0)
		}
	}
}

// TestPlacementSweepSanity checks the sweep rows carry coherent derived
// fields (fingerprint present, best-static/win arithmetic).
func TestPlacementSweepSanity(t *testing.T) {
	rows, err := PlacementSweep(testbed.ThorXeon(), PlacementScenarios()[:1])
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Fingerprint == "" || len(r.Points) != 3 {
		t.Fatalf("row shape: %+v", r)
	}
	want := r.Points[0].TotalUS
	if r.Points[1].TotalUS < want {
		want = r.Points[1].TotalUS
	}
	if r.BestStaticUS != want {
		t.Errorf("best static %v, want %v", r.BestStaticUS, want)
	}
}

// BenchmarkPlacementPolicies drives a small generated scenario under all
// three routing policies per iteration — the CI -benchtime=1x smoke for
// the placement subsystem (crashes, divergence and policy errors surface
// without timing noise; virtual-time outcomes are tracked in
// BENCH_engines.json, not asserted here).
func BenchmarkPlacementPolicies(b *testing.B) {
	p := testbed.ThorXeon()
	params := place.WorkloadParams{Seed: 46, Nodes: 3, Types: 4, Ops: 16}
	for i := 0; i < b.N; i++ {
		var hashes []uint64
		for _, pol := range []place.Policy{place.PolicyShipCode, place.PolicyPullData, place.PolicyCostModel} {
			_, _, hash, err := RunPlacementScenario(p, params, pol)
			if err != nil {
				b.Fatal(err)
			}
			hashes = append(hashes, hash)
		}
		if hashes[0] != hashes[1] || hashes[1] != hashes[2] {
			b.Fatalf("policies diverged: %x", hashes)
		}
	}
}
