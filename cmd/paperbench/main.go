// paperbench regenerates the complete evaluation of "Bring the BitCODE"
// (§V): Tables I-VI and Figures 5-12, printed in the paper's layout.
// EXPERIMENTS.md is produced from this output.
//
// Usage:
//
//	paperbench           # full paper grid (several minutes of CPU)
//	paperbench -quick    # reduced grids
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
)

func main() {
	log.SetFlags(0)
	quick := flag.Bool("quick", false, "reduced DAPC grids")
	flag.Parse()

	fmt.Println("=== Three-Chains paper evaluation (simulated testbeds) ===")
	fmt.Println()
	run("tsibench", nil)
	args := []string{}
	if *quick {
		args = append(args, "-quick")
	}
	run("dapcbench", args)
}

// run executes a sibling command in-process when possible; paperbench is
// a thin driver, so it simply execs the already-built binaries when
// present and falls back to `go run`.
func run(tool string, args []string) {
	if path, err := exec.LookPath("./" + tool); err == nil {
		pipe(exec.Command(path, args...))
		return
	}
	goArgs := append([]string{"run", "threechains/cmd/" + tool}, args...)
	pipe(exec.Command("go", goArgs...))
}

func pipe(cmd *exec.Cmd) {
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		log.Fatal(err)
	}
}
