package mcode

import (
	"fmt"
	"strings"
)

// Engine is a pluggable execution backend for lowered modules. An engine
// turns a CompiledModule into a runnable Artifact once (the JIT-time
// step); Machines then execute entries of that artifact per message. The
// split mirrors the paper's claim structure (§III-C): moving code pays
// off only when the one-time compile cost buys near-native per-call
// execution, so the per-µarch backend must be swappable — a wimpy DPU
// core and a wide host core may want different execution strategies.
//
// Four engines ship today:
//
//   - InterpEngine ("interp"): the reference giant-switch interpreter.
//     Zero prepare cost, highest per-step cost. The semantic oracle.
//   - ClosureEngine ("closure"): pre-compiles every instruction into a
//     Go closure with registers, immediates and branch targets resolved
//     at prepare time (threaded-code style), batching step/op-count
//     accounting per basic block.
//   - SuperblockEngine ("superblock"): the closure backend with blocks
//     merged into extended basic blocks at prepare time — unconditional
//     chains flattened, self-loops run as native Go loops, and a widened
//     superinstruction fusion set (load+op+store, read-modify-write,
//     store-to-load forwarding, compare+branch and counted-loop
//     back-edge tails). Amortizes dispatch *within* one activation.
//     Default engine (superblock.go).
//   - AdaptiveEngine ("adaptive"): starts every module on the
//     interpreter and promotes it to the superblock artifact once
//     observed traffic crosses the compile-amortization threshold
//     (adaptive.go).
//
// All engines produce bit-identical results, dynamic operation counts,
// step totals, memory effects and errors — including on ir.ErrMaxSteps
// aborts: the closure engine pre-charges steps per basic block, but when
// a block's charge would blow the budget it refunds the charge and
// replays that block's in-budget prefix through the reference
// interpreter loop, so abort-time counters and the final partial block's
// side effects match the oracle exactly. The differential tests in
// engine_test.go hold every engine (and the RunBatch path) to this
// contract; it is what lets the runtime pick engines per node without
// perturbing the simulation's virtual time.
type Engine interface {
	// Name returns the engine's registry name ("interp", "closure").
	Name() string
	// Prepare compiles the module into a runnable artifact. The artifact
	// is immutable and may be shared by any number of Machines (it holds
	// no per-execution state).
	Prepare(cm *CompiledModule) (Artifact, error)
}

// Artifact is an engine-compiled module: the runnable form a Machine
// executes against. Implementations live in this package; per-execution
// state (registers, stack pointer, counters) stays on the Machine so one
// artifact serves every registration of the module on a node.
type Artifact interface {
	// Module returns the lowered module the artifact was compiled from.
	Module() *CompiledModule

	// run executes function fi with args on ma, returning the result
	// value. Implementations must maintain ma.Counts, ma.steps and ma.sp
	// with the semantics of the reference interpreter.
	run(ma *Machine, fi int, args []uint64) (uint64, error)

	// runBatch executes function fi once per argument vector, rebasing
	// the MaxSteps ceiling on each element's start so every element gets
	// a fresh budget while counts and steps accumulate across the batch.
	// Batch-level validation (entry, arity, out sizing) is done by
	// Machine.RunBatch before dispatching here.
	runBatch(ma *Machine, fi int, argvs [][]uint64, out []BatchResult)
}

// Engine registry names.
const (
	EngineNameInterp     = "interp"
	EngineNameClosure    = "closure"
	EngineNameSuperblock = "superblock"
	EngineNameAdaptive   = "adaptive"
)

// DefaultEngine executes modules when no engine is selected explicitly.
// The superblock engine wins on every measured workload (see
// BenchmarkEngineInterpVsClosure and BENCH_engines.json), so it is the
// default.
var DefaultEngine Engine = SuperblockEngine{}

// EngineNames lists the registered engine names.
func EngineNames() []string {
	return []string{EngineNameSuperblock, EngineNameClosure, EngineNameInterp, EngineNameAdaptive}
}

// EngineByName resolves an engine registry name. The empty string picks
// DefaultEngine, so config structs can leave the knob zero-valued.
func EngineByName(name string) (Engine, error) {
	switch name {
	case "":
		return DefaultEngine, nil
	case EngineNameClosure:
		return ClosureEngine{}, nil
	case EngineNameSuperblock:
		return SuperblockEngine{}, nil
	case EngineNameInterp:
		return InterpEngine{}, nil
	case EngineNameAdaptive:
		// Each resolution carries a fresh traffic clock: a cluster node
		// resolves its engine once, so artifacts prepared through that
		// node's JIT session share one clock and age against the node's
		// own message stream (demotion of idle promoted types).
		return AdaptiveEngine{Clock: NewAdaptiveClock()}, nil
	}
	return nil, fmt.Errorf("mcode: unknown engine %q (have %s)",
		name, strings.Join(EngineNames(), ", "))
}

// MustEngine is EngineByName for statically known names; it panics on an
// unknown name (a deployment configuration bug, not a runtime condition).
func MustEngine(name string) Engine {
	e, err := EngineByName(name)
	if err != nil {
		panic(err)
	}
	return e
}

// InterpEngine is the reference execution engine: the giant-switch
// interpreter over lowered instructions (vm.go). It decodes every
// instruction on every step, which makes it the slowest backend but also
// the simplest — it is the oracle the differential tests hold every
// other engine against.
type InterpEngine struct{}

// Name implements Engine.
func (InterpEngine) Name() string { return EngineNameInterp }

// Prepare implements Engine. Interpretation needs no pre-processing, so
// the artifact is just the module.
func (InterpEngine) Prepare(cm *CompiledModule) (Artifact, error) {
	return interpArtifact{cm: cm}, nil
}

// interpArtifact runs programs through Machine.exec's switch loop.
type interpArtifact struct{ cm *CompiledModule }

func (a interpArtifact) Module() *CompiledModule { return a.cm }

func (a interpArtifact) run(ma *Machine, fi int, args []uint64) (uint64, error) {
	return ma.exec(a.cm.Funcs[fi], args)
}

// runBatch is the oracle loop fallback: one interpreter activation per
// element inside a per-element budget window.
func (a interpArtifact) runBatch(ma *Machine, fi int, argvs [][]uint64, out []BatchResult) {
	p := a.cm.Funcs[fi]
	budget := ma.Limits.MaxSteps
	for i, argv := range argvs {
		start := ma.steps
		ma.Limits.MaxSteps = start + budget
		v, err := ma.exec(p, argv)
		out[i] = BatchResult{Value: v, Steps: ma.steps - start, Err: err}
	}
	ma.Limits.MaxSteps = budget
}
